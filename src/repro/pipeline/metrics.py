"""Pipeline observability: per-stage counters, gauges, histograms.

Every stage of a :class:`~repro.pipeline.runtime.StagePipeline` gets a
:class:`StageMetrics` entry (elements fed, elements emitted, cumulative
wall time in ``feed``).  The monitoring stage additionally reports a
gauge sample per closed bin — bin-close latency, baseline and pending
population — so capacity trends are visible without profiling.

Since the telemetry-plane PR the registry also owns the distribution
side of observability:

- every stage carries a :class:`~repro.telemetry.hist.LogHistogram`
  of nanoseconds per element per metered feed call;
- :class:`BinStats` carries a histogram of bin-close latency;
- ``hist(name)`` hands out named histograms for transport-level
  distributions (ring/queue waits, sync-exchange round trips);
- ``trace`` is the bounded :class:`~repro.telemetry.trace.TraceJournal`
  of bin-lifecycle span events.

The metric taxonomy is strict about what checkpoints see: counters in
``state_dict()`` only.  Histograms, gauges, batches, recovery stats and
the trace journal are *run* telemetry — merged across processes via
the wire sidecars (``hists_to_wire``/``absorb_hists_wire``), but never
part of a checkpoint document.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable

from repro.telemetry.hist import LogHistogram
from repro.telemetry.trace import TraceJournal

logger = logging.getLogger("repro.pipeline.metrics")


@dataclass
class StageMetrics:
    """Counters for one stage."""

    name: str
    fed: int = 0
    emitted: int = 0
    seconds: float = 0.0
    #: metered feed calls — one per chunk on the batched runtimes, so
    #: ``fed / batches`` is the realised batch size.  Run telemetry,
    #: not state: never checkpointed, zeroed on restore.
    batches: int = 0
    #: distribution of nanoseconds per element, one sample per metered
    #: feed call.  Run telemetry: excluded from checkpoints, merged
    #: across workers by :meth:`PipelineMetrics.absorb`.
    hist: LogHistogram = field(default_factory=LogHistogram)

    @property
    def throughput(self) -> float:
        """Elements fed per second of stage time (0 when untimed)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.fed / self.seconds

    @property
    def ns_per_element(self) -> float:
        """Stage nanoseconds per element fed (0 when nothing fed)."""
        if self.fed <= 0:
            return 0.0
        return self.seconds * 1e9 / self.fed

    @property
    def mean_batch(self) -> float:
        """Realised elements per metered feed call."""
        if self.batches <= 0:
            return 0.0
        return self.fed / self.batches

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "name": self.name,
            "fed": self.fed,
            "emitted": self.emitted,
            "seconds": round(self.seconds, 6),
            "throughput_per_s": round(self.throughput, 1),
            "ns_per_element": round(self.ns_per_element, 1),
            "batches": self.batches,
            "mean_batch": round(self.mean_batch, 1),
        }


@dataclass
class RecoveryStats:
    """Supervision-layer telemetry (run observability, never state).

    Populated by :class:`~repro.pipeline.supervisor.SupervisedKeplerPipeline`
    and by the quarantine path of the parallel runtimes.  Deliberately
    absent from :meth:`PipelineMetrics.state_dict`: recovery history is
    a property of *this* run, not of the stream, and folding it into
    checkpoints would break the byte-identity contract between faulted
    and unfaulted runs.
    """

    restarts: int = 0
    replayed_elements: int = 0
    recovery_ms: float = 0.0
    degraded: bool = False
    quarantined_batches: int = 0

    def as_dict(self) -> dict[str, float | int | bool]:
        return {
            "restarts": self.restarts,
            "replayed_elements": self.replayed_elements,
            "recovery_ms": round(self.recovery_ms, 3),
            "degraded": self.degraded,
            "quarantined_batches": self.quarantined_batches,
        }


@dataclass
class BinStats:
    """Running statistics over closed bins (bounded memory)."""

    count: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    last_baseline_entries: int = 0
    last_pending_entries: int = 0
    #: bin-close latency distribution (seconds).  Run telemetry.
    hist: LogHistogram = field(default_factory=LogHistogram)

    def record(
        self, latency_s: float, baseline_entries: int, pending_entries: int
    ) -> None:
        self.count += 1
        self.total_latency_s += latency_s
        self.max_latency_s = max(self.max_latency_s, latency_s)
        self.last_baseline_entries = baseline_entries
        self.last_pending_entries = pending_entries
        self.hist.record(latency_s)

    @property
    def mean_latency_s(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_latency_s / self.count

    def as_dict(self) -> dict[str, float | int]:
        return {
            "bins_closed": self.count,
            "mean_latency_s": round(self.mean_latency_s, 6),
            "max_latency_s": round(self.max_latency_s, 6),
            "baseline_entries": self.last_baseline_entries,
            "pending_entries": self.last_pending_entries,
        }


class PipelineMetrics:
    """Registry shared by all stages of one pipeline."""

    def __init__(self) -> None:
        self.stages: dict[str, StageMetrics] = {}
        self.bins = BinStats()
        self.recovery = RecoveryStats()
        #: pull-based gauge sources: name -> zero-arg callable, sampled
        #: at :meth:`gauges` / :meth:`snapshot` time so the reported
        #: value is never stale.  Gauges expose derived-cache telemetry
        #: (tagging-memo evictions, serde intern table sizes) of the
        #: *calling process*; they are observability, not state, and
        #: are deliberately absent from :meth:`state_dict`.
        self._gauge_sources: dict[str, Callable[[], int | float]] = {}
        #: named histograms for non-stage distributions — transport
        #: waits (``ring_wait_s``, ``queue_wait_s``), the shard
        #: runtime's fused sync exchange (``sync_round_s``), etc.
        #: Run telemetry, merged by :meth:`absorb`.
        self.hists: dict[str, LogHistogram] = {}
        #: bounded journal of bin-lifecycle span events.
        self.trace = TraceJournal()
        #: gauge names that saw a collision warning already (warn once).
        self._gauge_collisions: set[str] = set()

    def gauge_source(
        self,
        name: str,
        source: Callable[[], int | float],
        *,
        replace: bool = False,
    ) -> None:
        """Register a named gauge callable.

        Re-registering an existing name with a *different* callable is
        almost always a composition bug (two processes' caches fighting
        over one name), so it logs a warning unless ``replace=True`` —
        builders that intentionally refresh their own sources on a
        supervisor rebuild pass ``replace=True``.  The new source wins
        either way, matching the historical behaviour.
        """
        existing = self._gauge_sources.get(name)
        if (
            existing is not None
            and existing is not source
            and not replace
            and name not in self._gauge_collisions
        ):
            self._gauge_collisions.add(name)
            logger.warning(
                "gauge %r re-registered with a different source; "
                "replacing (namespace worker gauges, e.g. 'w0.%s')",
                name,
                name,
            )
        self._gauge_sources[name] = source

    def gauges(self) -> dict[str, int | float]:
        """Sample every registered gauge now."""
        return {
            name: source()
            for name, source in list(self._gauge_sources.items())
        }

    def stage(self, name: str) -> StageMetrics:
        metrics = self.stages.get(name)
        if metrics is None:
            metrics = self.stages[name] = StageMetrics(name=name)
        return metrics

    def hist(self, name: str) -> LogHistogram:
        """Named histogram handle (created on first use)."""
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = LogHistogram()
        return hist

    def record_bin(
        self, latency_s: float, baseline_entries: int, pending_entries: int
    ) -> None:
        self.bins.record(latency_s, baseline_entries, pending_entries)

    def hist_summaries(self) -> dict[str, dict]:
        """Every non-empty histogram, keyed by taxonomy name.

        Per-stage ns/element histograms appear as ``stage_ns.<stage>``,
        the bin-close latency histogram as ``bin_close_s``, and named
        histograms under their registered names (``*_s`` suffix =
        seconds).
        """
        out: dict[str, dict] = {}
        for name, metrics in list(self.stages.items()):
            if metrics.hist.count:
                out[f"stage_ns.{name}"] = metrics.hist.as_dict()
        if self.bins.hist.count:
            out["bin_close_s"] = self.bins.hist.as_dict()
        for name, hist in list(self.hists.items()):
            if hist.count:
                out[name] = hist.as_dict()
        return out

    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable view of every counter."""
        return {
            "stages": [
                metrics.as_dict() for metrics in list(self.stages.values())
            ],
            "bins": self.bins.as_dict(),
            "recovery": self.recovery.as_dict(),
            "gauges": self.gauges(),
            "hists": self.hist_summaries(),
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpoint shape: exact counters, no rounding."""
        return {
            "stages": [
                [m.name, m.fed, m.emitted, m.seconds]
                for m in self.stages.values()
            ],
            "bins": {
                "count": self.bins.count,
                "total_latency_s": self.bins.total_latency_s,
                "max_latency_s": self.bins.max_latency_s,
                "last_baseline_entries": self.bins.last_baseline_entries,
                "last_pending_entries": self.bins.last_pending_entries,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore counters **in place**.

        Existing :class:`StageMetrics` objects are mutated rather than
        replaced: the pipeline runtimes resolve stage handles once at
        construction (hot-loop optimisation), and those handles must
        stay live across a checkpoint restore.
        """
        self.reset()  # entries absent from the checkpoint go to zero
        for name, fed, emitted, seconds in state["stages"]:
            metrics = self.stage(name)
            metrics.fed = fed
            metrics.emitted = emitted
            metrics.seconds = seconds
        bins = state["bins"]
        self.bins.count = bins["count"]
        self.bins.total_latency_s = bins["total_latency_s"]
        self.bins.max_latency_s = bins["max_latency_s"]
        self.bins.last_baseline_entries = bins["last_baseline_entries"]
        self.bins.last_pending_entries = bins["last_pending_entries"]

    def reset(self) -> None:
        """Zero every counter in place (handles stay live)."""
        for metrics in self.stages.values():
            metrics.fed = 0
            metrics.emitted = 0
            metrics.seconds = 0.0
            metrics.batches = 0
            metrics.hist.clear()
        self.bins.count = 0
        self.bins.total_latency_s = 0.0
        self.bins.max_latency_s = 0.0
        self.bins.last_baseline_entries = 0
        self.bins.last_pending_entries = 0
        self.bins.hist.clear()
        for hist in self.hists.values():
            hist.clear()

    def absorb(self, other: "PipelineMetrics") -> None:
        """Fold another registry's counters into this one (aggregation)."""
        for name, metrics in list(other.stages.items()):
            mine = self.stage(name)
            mine.fed += metrics.fed
            mine.emitted += metrics.emitted
            mine.seconds += metrics.seconds
            mine.batches += metrics.batches
            mine.hist.merge(metrics.hist)
        for name, hist in list(other.hists.items()):
            if hist.count:
                self.hist(name).merge(hist)

    def absorb_bins(self, other: "PipelineMetrics") -> None:
        """Fold another registry's bin gauges into this one.

        Used by the multiprocess runtime to compose worker registries:
        counts and latencies sum; the population gauges take the other
        side's last sample when it has closed any bin at all (workers
        hold the live monitor, so their samples are the fresher ones).
        """
        bins = other.bins
        if bins.count == 0:
            return
        self.bins.count += bins.count
        self.bins.total_latency_s += bins.total_latency_s
        self.bins.max_latency_s = max(
            self.bins.max_latency_s, bins.max_latency_s
        )
        self.bins.last_baseline_entries = bins.last_baseline_entries
        self.bins.last_pending_entries = bins.last_pending_entries
        self.bins.hist.merge(bins.hist)

    def adopt_gauges(self, other: "PipelineMetrics") -> None:
        """Share another registry's gauge sources (composed views).

        Adopting a name this registry already points at a *different*
        callable is a collision between two source registries; it is
        logged once per name (the adopted source wins, matching the
        historical last-wins behaviour).
        """
        for name, source in list(other._gauge_sources.items()):
            existing = self._gauge_sources.get(name)
            if (
                existing is not None
                and existing is not source
                and name not in self._gauge_collisions
            ):
                self._gauge_collisions.add(name)
                logger.warning(
                    "adopt_gauges: gauge %r collides across registries; "
                    "adopted source wins",
                    name,
                )
            self._gauge_sources[name] = source

    # -- wire sidecars (live frames / sync exchanges) ------------------

    def hists_to_wire(self) -> dict:
        """Marshal-safe lossless encoding of every non-empty histogram.

        Shape: ``{"stage": {name: wire}, "named": {name: wire},
        "bin": wire | None}``.  Travels in the telemetry *sidecar* of
        control/sync messages (next to ``batches``/``gauge_values``),
        never in ``state_dict``.
        """
        return {
            "stage": {
                name: m.hist.to_wire()
                for name, m in self.stages.items()
                if m.hist.count
            },
            "named": {
                name: h.to_wire()
                for name, h in self.hists.items()
                if h.count
            },
            "bin": self.bins.hist.to_wire() if self.bins.hist.count else None,
        }

    def absorb_hists_wire(self, doc: dict | None) -> None:
        """Merge a :meth:`hists_to_wire` sidecar into this registry."""
        if not doc:
            return
        for name, wire in doc.get("stage", {}).items():
            self.stage(name).hist.merge(LogHistogram.from_wire(wire))
        for name, wire in doc.get("named", {}).items():
            self.hist(name).merge(LogHistogram.from_wire(wire))
        bin_wire = doc.get("bin")
        if bin_wire:
            self.bins.hist.merge(LogHistogram.from_wire(bin_wire))

    def load_hists_wire(self, doc: dict | None) -> None:
        """Replace histogram contents from a sidecar (scratch loads)."""
        for metrics in self.stages.values():
            metrics.hist.clear()
        for hist in self.hists.values():
            hist.clear()
        self.bins.hist.clear()
        self.absorb_hists_wire(doc)

    def register_cache_gauges(self, input_module) -> None:
        """Point the standard cache gauges at ``input_module``.

        Registers the tagging-memo telemetry (``memo_entries``,
        ``memo_hits``, ``memo_evictions``) plus one size and one
        eviction gauge per wire-intern table in
        :mod:`repro.core.serde`.  Safe to call in every builder: the
        sources are process-local, so a forked worker inheriting the
        registration samples its *own* caches.
        """
        from repro.core import serde

        self.gauge_source(
            "memo_entries",
            lambda: len(input_module._memo) + len(input_module._memo_old),
            replace=True,
        )
        self.gauge_source(
            "memo_hits", lambda: input_module.memo_hits, replace=True
        )
        self.gauge_source(
            "memo_evictions",
            lambda: input_module.memo_evictions,
            replace=True,
        )
        for table in ("community", "pop", "path", "tagset"):
            self.gauge_source(
                f"intern_{table}_entries",
                lambda t=table: serde.intern_stats()[t]["size"],
                replace=True,
            )
            self.gauge_source(
                f"intern_{table}_evictions",
                lambda t=table: serde.intern_stats()[t]["evictions"],
                replace=True,
            )

    def describe(self) -> str:
        """Compact one-line-per-stage human-readable summary."""
        lines = []
        for name, m in self.stages.items():
            lines.append(
                f"{name:>10}: fed={m.fed:<8d} emitted={m.emitted:<8d}"
                f" time={m.seconds:8.3f}s"
            )
        b = self.bins
        lines.append(
            f"{'bins':>10}: closed={b.count} mean_latency="
            f"{b.mean_latency_s * 1000.0:.2f}ms"
            f" baseline={b.last_baseline_entries}"
            f" pending={b.last_pending_entries}"
        )
        return "\n".join(lines)
