"""Pipeline observability: per-stage counters and monitor gauges.

Every stage of a :class:`~repro.pipeline.runtime.StagePipeline` gets a
:class:`StageMetrics` entry (elements fed, elements emitted, cumulative
wall time in ``feed``).  The monitoring stage additionally reports a
gauge sample per closed bin — bin-close latency, baseline and pending
population — so capacity trends are visible without profiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass
class StageMetrics:
    """Counters for one stage."""

    name: str
    fed: int = 0
    emitted: int = 0
    seconds: float = 0.0
    #: metered feed calls — one per chunk on the batched runtimes, so
    #: ``fed / batches`` is the realised batch size.  Run telemetry,
    #: not state: never checkpointed, zeroed on restore.
    batches: int = 0

    @property
    def throughput(self) -> float:
        """Elements fed per second of stage time (0 when untimed)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.fed / self.seconds

    @property
    def ns_per_element(self) -> float:
        """Stage nanoseconds per element fed (0 when nothing fed)."""
        if self.fed <= 0:
            return 0.0
        return self.seconds * 1e9 / self.fed

    @property
    def mean_batch(self) -> float:
        """Realised elements per metered feed call."""
        if self.batches <= 0:
            return 0.0
        return self.fed / self.batches

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "name": self.name,
            "fed": self.fed,
            "emitted": self.emitted,
            "seconds": round(self.seconds, 6),
            "throughput_per_s": round(self.throughput, 1),
            "ns_per_element": round(self.ns_per_element, 1),
            "batches": self.batches,
            "mean_batch": round(self.mean_batch, 1),
        }


@dataclass
class RecoveryStats:
    """Supervision-layer telemetry (run observability, never state).

    Populated by :class:`~repro.pipeline.supervisor.SupervisedKeplerPipeline`
    and by the quarantine path of the parallel runtimes.  Deliberately
    absent from :meth:`PipelineMetrics.state_dict`: recovery history is
    a property of *this* run, not of the stream, and folding it into
    checkpoints would break the byte-identity contract between faulted
    and unfaulted runs.
    """

    restarts: int = 0
    replayed_elements: int = 0
    recovery_ms: float = 0.0
    degraded: bool = False
    quarantined_batches: int = 0

    def as_dict(self) -> dict[str, float | int | bool]:
        return {
            "restarts": self.restarts,
            "replayed_elements": self.replayed_elements,
            "recovery_ms": round(self.recovery_ms, 3),
            "degraded": self.degraded,
            "quarantined_batches": self.quarantined_batches,
        }


@dataclass
class BinStats:
    """Running statistics over closed bins (bounded memory)."""

    count: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    last_baseline_entries: int = 0
    last_pending_entries: int = 0

    def record(
        self, latency_s: float, baseline_entries: int, pending_entries: int
    ) -> None:
        self.count += 1
        self.total_latency_s += latency_s
        self.max_latency_s = max(self.max_latency_s, latency_s)
        self.last_baseline_entries = baseline_entries
        self.last_pending_entries = pending_entries

    @property
    def mean_latency_s(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_latency_s / self.count

    def as_dict(self) -> dict[str, float | int]:
        return {
            "bins_closed": self.count,
            "mean_latency_s": round(self.mean_latency_s, 6),
            "max_latency_s": round(self.max_latency_s, 6),
            "baseline_entries": self.last_baseline_entries,
            "pending_entries": self.last_pending_entries,
        }


class PipelineMetrics:
    """Registry shared by all stages of one pipeline."""

    def __init__(self) -> None:
        self.stages: dict[str, StageMetrics] = {}
        self.bins = BinStats()
        self.recovery = RecoveryStats()
        #: pull-based gauge sources: name -> zero-arg callable, sampled
        #: at :meth:`gauges` / :meth:`snapshot` time so the reported
        #: value is never stale.  Gauges expose derived-cache telemetry
        #: (tagging-memo evictions, serde intern table sizes) of the
        #: *calling process*; they are observability, not state, and
        #: are deliberately absent from :meth:`state_dict`.
        self._gauge_sources: dict[str, Callable[[], int | float]] = {}

    def gauge_source(
        self, name: str, source: Callable[[], int | float]
    ) -> None:
        """Register (or replace) a named gauge callable."""
        self._gauge_sources[name] = source

    def gauges(self) -> dict[str, int | float]:
        """Sample every registered gauge now."""
        return {
            name: source() for name, source in self._gauge_sources.items()
        }

    def stage(self, name: str) -> StageMetrics:
        metrics = self.stages.get(name)
        if metrics is None:
            metrics = self.stages[name] = StageMetrics(name=name)
        return metrics

    def record_bin(
        self, latency_s: float, baseline_entries: int, pending_entries: int
    ) -> None:
        self.bins.record(latency_s, baseline_entries, pending_entries)

    def snapshot(self) -> dict[str, object]:
        """JSON-serialisable view of every counter."""
        return {
            "stages": [
                self.stages[name].as_dict() for name in self.stages
            ],
            "bins": self.bins.as_dict(),
            "recovery": self.recovery.as_dict(),
            "gauges": self.gauges(),
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpoint shape: exact counters, no rounding."""
        return {
            "stages": [
                [m.name, m.fed, m.emitted, m.seconds]
                for m in self.stages.values()
            ],
            "bins": {
                "count": self.bins.count,
                "total_latency_s": self.bins.total_latency_s,
                "max_latency_s": self.bins.max_latency_s,
                "last_baseline_entries": self.bins.last_baseline_entries,
                "last_pending_entries": self.bins.last_pending_entries,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore counters **in place**.

        Existing :class:`StageMetrics` objects are mutated rather than
        replaced: the pipeline runtimes resolve stage handles once at
        construction (hot-loop optimisation), and those handles must
        stay live across a checkpoint restore.
        """
        self.reset()  # entries absent from the checkpoint go to zero
        for name, fed, emitted, seconds in state["stages"]:
            metrics = self.stage(name)
            metrics.fed = fed
            metrics.emitted = emitted
            metrics.seconds = seconds
        bins = state["bins"]
        self.bins.count = bins["count"]
        self.bins.total_latency_s = bins["total_latency_s"]
        self.bins.max_latency_s = bins["max_latency_s"]
        self.bins.last_baseline_entries = bins["last_baseline_entries"]
        self.bins.last_pending_entries = bins["last_pending_entries"]

    def reset(self) -> None:
        """Zero every counter in place (handles stay live)."""
        for metrics in self.stages.values():
            metrics.fed = 0
            metrics.emitted = 0
            metrics.seconds = 0.0
            metrics.batches = 0
        self.bins.count = 0
        self.bins.total_latency_s = 0.0
        self.bins.max_latency_s = 0.0
        self.bins.last_baseline_entries = 0
        self.bins.last_pending_entries = 0

    def absorb(self, other: "PipelineMetrics") -> None:
        """Fold another registry's counters into this one (aggregation)."""
        for name, metrics in other.stages.items():
            mine = self.stage(name)
            mine.fed += metrics.fed
            mine.emitted += metrics.emitted
            mine.seconds += metrics.seconds
            mine.batches += metrics.batches

    def absorb_bins(self, other: "PipelineMetrics") -> None:
        """Fold another registry's bin gauges into this one.

        Used by the multiprocess runtime to compose worker registries:
        counts and latencies sum; the population gauges take the other
        side's last sample when it has closed any bin at all (workers
        hold the live monitor, so their samples are the fresher ones).
        """
        bins = other.bins
        if bins.count == 0:
            return
        self.bins.count += bins.count
        self.bins.total_latency_s += bins.total_latency_s
        self.bins.max_latency_s = max(
            self.bins.max_latency_s, bins.max_latency_s
        )
        self.bins.last_baseline_entries = bins.last_baseline_entries
        self.bins.last_pending_entries = bins.last_pending_entries

    def adopt_gauges(self, other: "PipelineMetrics") -> None:
        """Share another registry's gauge sources (composed views)."""
        self._gauge_sources.update(other._gauge_sources)

    def register_cache_gauges(self, input_module) -> None:
        """Point the standard cache gauges at ``input_module``.

        Registers the tagging-memo telemetry (``memo_entries``,
        ``memo_hits``, ``memo_evictions``) plus one size and one
        eviction gauge per wire-intern table in
        :mod:`repro.core.serde`.  Safe to call in every builder: the
        sources are process-local, so a forked worker inheriting the
        registration samples its *own* caches.
        """
        from repro.core import serde

        self.gauge_source(
            "memo_entries",
            lambda: len(input_module._memo) + len(input_module._memo_old),
        )
        self.gauge_source("memo_hits", lambda: input_module.memo_hits)
        self.gauge_source(
            "memo_evictions", lambda: input_module.memo_evictions
        )
        for table in ("community", "pop", "path", "tagset"):
            self.gauge_source(
                f"intern_{table}_entries",
                lambda t=table: serde.intern_stats()[t]["size"],
            )
            self.gauge_source(
                f"intern_{table}_evictions",
                lambda t=table: serde.intern_stats()[t]["evictions"],
            )

    def describe(self) -> str:
        """Compact one-line-per-stage human-readable summary."""
        lines = []
        for name, m in self.stages.items():
            lines.append(
                f"{name:>10}: fed={m.fed:<8d} emitted={m.emitted:<8d}"
                f" time={m.seconds:8.3f}s"
            )
        b = self.bins
        lines.append(
            f"{'bins':>10}: closed={b.count} mean_latency="
            f"{b.mean_latency_s * 1000.0:.2f}ms"
            f" baseline={b.last_baseline_entries}"
            f" pending={b.last_pending_entries}"
        )
        return "\n".join(lines)
