"""Crash-tolerant supervision: checkpoint-replay recovery over any runtime.

The parallel runtimes (:mod:`repro.pipeline.parallel`,
:mod:`repro.ingest.tier`) fail loudly — a SIGKILLed worker, a hung
queue or a poisoned wire batch surfaces as a
:class:`~repro.pipeline.liveness.RecoverableWorkerError` subclass and
the runtime is dead.  This module turns that death into *metered,
bounded-time, byte-exact recovery*:

* the supervisor journals every admitted element chunk since the last
  checkpoint into a bounded in-memory replay buffer, and takes
  **micro-checkpoints** (the layout-free v3 document, via the
  runtimes' drain-barrier ``checkpoint_parts``) every
  ``checkpoint_interval`` elements — at chunk boundaries, which the
  drain barrier aligns with the per-bin syncs;
* on a recoverable failure it tears the runtime down
  (:func:`~repro.pipeline.liveness.reap_workers` under a short
  deadline), rebuilds a fresh worker set through the ``build``
  factory after exponential backoff, restores the last checkpoint and
  replays the journal — the fired-flag protocol of
  :mod:`repro.pipeline.faults` (and real crashes being one-off)
  guarantees the replayed elements pass unharmed;
* after ``max_restarts`` failed recoveries it **degrades gracefully**:
  the ``fallback`` factory builds the in-process chain (no forked
  workers, no queues — nothing left to kill), the same checkpoint
  restores into it (the document is runtime-independent by
  construction) and the stream finishes linearly rather than raising;
* a quarantined batch (see the dead-letter path in
  :mod:`repro.pipeline.parallel`) is *recoverable data loss* under
  supervision: instead of continuing past the dropped elements, the
  supervisor rolls back to the last checkpoint and replays, so the
  supervised stream stays byte-identical to an unfaulted run.

Recovery is visible, not silent: ``restarts``, ``replayed_elements``,
``recovery_ms``, ``degraded`` and ``quarantined_batches`` surface
through :class:`~repro.pipeline.metrics.PipelineMetrics` (the
``recovery`` section of every snapshot) — telemetry only, never
checkpoint state, so faulted and unfaulted checkpoints stay
byte-identical.

Wire-up lives in :class:`repro.core.kepler.Kepler`:
``KeplerParams(supervised=True, recovery=RecoveryPolicy(...))`` wraps
whichever runtime the other knobs built.
"""

from __future__ import annotations

import json
import logging
import time
from collections import deque
from typing import Any, Callable, Iterable

from repro.pipeline.ingest import merge_streams
from repro.pipeline.liveness import PoisonedBatchError, RecoverableWorkerError
from repro.pipeline.metrics import PipelineMetrics, RecoveryStats
from repro.pipeline.parallel import DEAD_LETTER_CAP
from repro.pipeline.runtime import FEED_CHUNK
from repro.telemetry import TraceJournal

_LOG = logging.getLogger("repro.pipeline.supervisor")


class SupervisedPipeline:
    """The ``pipeline`` facade of a supervised runtime.

    Presents the :class:`~repro.pipeline.runtime.StagePipeline` feed
    surface (``feed`` / ``feed_many`` / ``flush``) while routing every
    call through the supervisor's journal-and-guard path.  ``feed_many``
    materialises the stream into journal-sized chunks — the journal
    must hold concrete elements to replay them.
    """

    def __init__(self, supervisor: "SupervisedKeplerPipeline") -> None:
        self._supervisor = supervisor

    def feed(self, element: Any) -> list[Any]:
        return self._supervisor._feed_chunk([element])

    def feed_many(self, elements: Iterable[Any]) -> list[Any]:
        supervisor = self._supervisor
        outs: list[Any] = []
        chunk: list[Any] = []
        for element in elements:
            chunk.append(element)
            if len(chunk) >= FEED_CHUNK:
                outs.extend(supervisor._feed_chunk(chunk))
                chunk = []
        if chunk:
            outs.extend(supervisor._feed_chunk(chunk))
        return outs

    def flush(self) -> list[Any]:
        return self._supervisor._flush()


class SupervisedKeplerPipeline:
    """Supervision wrapper with the standard stages-facade surface.

    ``build`` constructs the primary runtime (fresh stage state, fresh
    workers) and is called again for every restart; ``fallback``
    constructs the in-process degradation target.  Both must return a
    stages wrapper (``KeplerPipeline`` / ``ProcessKeplerPipeline`` /
    ``ShardProcessKeplerPipeline`` / ``IngestKeplerPipeline`` /
    ``ShardedKeplerPipeline``) whose checkpoint documents are mutually
    restorable — which they are whenever both factories use the same
    ``shards`` layout, the repo-wide checkpoint contract.

    The wrapper is deliberately *not* transparent about incremental
    outputs: a chunk interrupted by a recovery returns ``[]`` (its
    outputs re-materialise inside the replay and are discarded) — the
    authoritative read surface is the facade views (``records``,
    ``signal_log``, ``finalize_records``), which are byte-identical to
    an unfaulted run.
    """

    def __init__(
        self,
        build: Callable[[], Any],
        fallback: Callable[[], Any] | None = None,
        policy: Any | None = None,
    ) -> None:
        if policy is None:
            from repro.core.kepler import RecoveryPolicy

            policy = RecoveryPolicy()
        self._build = build
        self._fallback = fallback if fallback is not None else build
        self.policy = policy
        self.recovery_stats = RecoveryStats()
        #: replay buffer: ``("elements", chunk)`` / ``("flush",)`` /
        #: ``("feeds", materialized, count)`` units since the last
        #: stored checkpoint.
        self._journal: list[tuple] = []
        self._journal_elements = 0
        #: supervised dead-letter mirror: quarantined batches harvested
        #: from the (about to be torn down) runtime before recovery.
        self.dead_letters: deque = deque(maxlen=DEAD_LETTER_CAP)
        #: supervision-lifecycle trace journal: checkpoints, failures,
        #: replays, degradation.  Supervisor-owned so events survive
        #: runtime rebuilds; telemetry only, never checkpoint state.
        self.trace = TraceJournal(pid_label="supervisor")
        self.inner = build()
        self._apply_policy()
        # The epoch checkpoint: a fresh runtime's (empty) document, so
        # a crash before the first interval still has a restore target.
        self._checkpoint = json.dumps(
            self.inner.checkpoint_parts(), sort_keys=True
        )
        self.pipeline = SupervisedPipeline(self)

    # ------------------------------------------------------------------
    # Runtime discovery: the knob surface of whatever ``build`` built
    # ------------------------------------------------------------------
    def _runtimes(self) -> list[Any]:
        """Every runtime object under ``inner`` with a supervision knob.

        Walks the wrapper attributes (``pipeline`` / ``inner`` /
        ``tier``) by identity — the wrappers are dataclasses in places,
        and ``__eq__`` must not be consulted.
        """
        found: list[Any] = []
        seen: set[int] = set()
        stack: list[Any] = [self.inner]
        while stack:
            obj = stack.pop()
            if obj is None or id(obj) in seen:
                continue
            seen.add(id(obj))
            if hasattr(type(obj), "stall_timeout_s") or hasattr(
                obj, "quarantined"
            ):
                found.append(obj)
            for name in ("pipeline", "inner", "tier"):
                stack.append(getattr(obj, name, None))
        return found

    def _apply_policy(self) -> None:
        """Arm the stall detector and shorten teardown on every runtime."""
        for runtime in self._runtimes():
            if hasattr(type(runtime), "stall_timeout_s"):
                runtime.stall_timeout_s = self.policy.stall_timeout_s
            if hasattr(type(runtime), "teardown_deadline_s"):
                runtime.teardown_deadline_s = self.policy.teardown_deadline_s

    def _quarantine_delta(self) -> int:
        """Quarantined batches on the *current* runtimes, dead letters
        harvested.

        Every positive delta is immediately consumed by a recovery
        (which tears the counted runtimes down), so the live counters
        always read "since the last rebuild".
        """
        total = 0
        for runtime in self._runtimes():
            count = getattr(runtime, "quarantined", 0)
            if count:
                total += count
                self.dead_letters.extend(
                    getattr(runtime, "dead_letters", ())
                )
        return total

    # ------------------------------------------------------------------
    # Journal + micro-checkpoints
    # ------------------------------------------------------------------
    def _feed_chunk(self, chunk: list[Any]) -> list[Any]:
        self._journal.append(("elements", chunk))
        self._journal_elements += len(chunk)
        outs = self._guarded(lambda inner: inner.pipeline.feed_many(chunk))
        self._maybe_checkpoint()
        return outs

    def _flush(self) -> list[Any]:
        self._journal.append(("flush",))
        outs = self._guarded(lambda inner: inner.pipeline.flush())
        # Always checkpoint after a flush: it is the natural quiescent
        # point, and it makes the finalize path cheap to guard.
        self._take_checkpoint()
        return outs

    def process_feeds(self, sources) -> list[Any]:
        """Supervised per-collector feed runs (requires the ingest tier).

        The sources are materialised before the run — the journal must
        be able to replay them after a mid-run crash (an aborted tier
        run releases a prefix downstream; the rollback rewinds that
        prefix and the replay re-runs the whole set).  After
        degradation the tier is gone and the materialised feeds are
        merged by sort key instead — exactly the stream the watermark
        merge releases, by its own contract.
        """
        if isinstance(sources, dict):
            materialized: Any = {
                name: list(source) for name, source in sources.items()
            }
            count = sum(len(v) for v in materialized.values())
        else:
            materialized = [list(source) for source in sources]
            count = sum(len(v) for v in materialized)
        self._journal.append(("feeds", materialized, count))
        self._journal_elements += count
        outs = self._guarded(
            lambda inner: self._dispatch_feeds(inner, materialized)
        )
        self._take_checkpoint()
        return outs

    @staticmethod
    def _dispatch_feeds(inner: Any, materialized) -> list[Any]:
        target = getattr(inner, "process_feeds", None)
        if target is not None:
            return target(materialized)
        # Degraded runtime: no tier.  Merge the materialised feeds by
        # sort key — byte-identical to the watermark merge's release
        # stream on time-sorted sources.
        sources = (
            list(materialized.values())
            if isinstance(materialized, dict)
            else list(materialized)
        )
        return inner.pipeline.feed_many(merge_streams(*sources))

    def _maybe_checkpoint(self) -> None:
        trigger = self.policy.checkpoint_interval
        if self.policy.journal_limit is not None:
            trigger = min(trigger, self.policy.journal_limit)
        if self._journal_elements >= trigger:
            self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        """Store a clean micro-checkpoint and clear the journal.

        A checkpoint is stored only when the drain barrier behind
        ``checkpoint_parts`` surfaces neither a worker failure nor a
        quarantine — a document must never bake in a skipped batch, or
        the byte-identity contract breaks silently.
        """
        for _ in range(self._attempt_budget()):
            try:
                parts = self.inner.checkpoint_parts()
            except RecoverableWorkerError as exc:
                self._recover(exc)
                continue
            delta = self._quarantine_delta()
            if delta:
                self.recovery_stats.quarantined_batches += delta
                self._recover(PoisonedBatchError(delta))
                continue
            self._checkpoint = json.dumps(parts, sort_keys=True)
            self.trace.emit(
                "checkpoint",
                "supervise",
                journal_elements=self._journal_elements,
                bytes=len(self._checkpoint),
            )
            self._journal.clear()
            self._journal_elements = 0
            return
        raise RuntimeError(
            "supervisor could not take a clean checkpoint after repeated"
            " recoveries"
        )

    # ------------------------------------------------------------------
    # Guard + recovery
    # ------------------------------------------------------------------
    def _attempt_budget(self) -> int:
        return max(3, self.policy.max_restarts + 2)

    def _guarded(self, op: Callable[[Any], list]) -> list:
        """Run a feed-side operation; recover (and drop its outputs) on
        failure."""
        try:
            result = op(self.inner)
        except RecoverableWorkerError as exc:
            self._recover(exc)
            return []
        delta = self._quarantine_delta()
        if delta:
            self.recovery_stats.quarantined_batches += delta
            self._recover(PoisonedBatchError(delta))
            return []
        return result

    def _guarded_read(self, op: Callable[[Any], Any]) -> Any:
        """Run a view read; recover and retry until it returns."""
        last: RecoverableWorkerError | None = None
        for _ in range(self._attempt_budget()):
            try:
                result = op(self.inner)
            except RecoverableWorkerError as exc:
                last = exc
                self._recover(exc)
                continue
            delta = self._quarantine_delta()
            if delta:
                self.recovery_stats.quarantined_batches += delta
                self._recover(PoisonedBatchError(delta))
                continue
            return result
        raise RuntimeError(
            "supervised view kept failing across recoveries"
        ) from last

    def _teardown(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is None:  # the in-process chains hold no resources
            return
        try:
            close()
        except BaseException:  # a dead runtime may fail its own close
            _LOG.debug("supervisor: teardown raised", exc_info=True)

    def _recover(self, cause: RecoverableWorkerError) -> None:
        """Tear down, rebuild, restore, replay — or degrade, or give up.

        ``restarts`` is cumulative across the run: every worker
        generation the supervisor buys counts against
        ``policy.max_restarts``, so a persistent fault exhausts the
        budget whether it fires during replay or across separate
        chunks.  With ``policy.degrade`` the exhausted budget buys the
        in-process fallback instead of an exception.
        """
        began = time.perf_counter()
        stats = self.recovery_stats
        policy = self.policy
        _LOG.warning("supervisor: recovering from %s", cause)
        self.trace.emit(
            "worker_failure",
            "supervise",
            cause=type(cause).__name__,
            journal_elements=self._journal_elements,
        )
        self._teardown()
        while True:
            stats.restarts += 1
            if stats.restarts > policy.max_restarts:
                if not policy.degrade:
                    stats.recovery_ms += (
                        time.perf_counter() - began
                    ) * 1000.0
                    raise cause
                if not stats.degraded:
                    stats.degraded = True
                    _LOG.warning(
                        "supervisor: restart budget (%d) exhausted;"
                        " degrading to the in-process fallback runtime",
                        policy.max_restarts,
                    )
                    self.trace.emit(
                        "degraded",
                        "supervise",
                        restarts=stats.restarts,
                    )
            delay = min(
                policy.backoff_cap_s,
                policy.backoff_base_s * (2.0 ** max(0, stats.restarts - 1)),
            )
            if delay > 0:
                time.sleep(delay)
            _LOG.warning(
                "supervisor: restart %d — rebuilding the %s runtime,"
                " replaying %d journal unit(s) (%d element(s))",
                stats.restarts,
                "fallback" if stats.degraded else "primary",
                len(self._journal),
                self._journal_elements,
            )
            try:
                self.inner = (
                    self._fallback() if stats.degraded else self._build()
                )
                self._apply_policy()
                self.inner.restore_parts(json.loads(self._checkpoint))
                replayed = self._replay()
            except RecoverableWorkerError as exc:
                _LOG.warning("supervisor: recovery attempt failed: %s", exc)
                self._teardown()
                continue
            delta = self._quarantine_delta()
            if delta:
                stats.quarantined_batches += delta
                _LOG.warning(
                    "supervisor: replay quarantined %d batch(es);"
                    " retrying recovery",
                    delta,
                )
                self._teardown()
                continue
            stats.replayed_elements += replayed
            break
        recovery_s = time.perf_counter() - began
        stats.recovery_ms += recovery_s * 1000.0
        self.trace.emit(
            "replay",
            "supervise",
            dur_s=recovery_s,
            restarts=stats.restarts,
            replayed=stats.replayed_elements,
            degraded=stats.degraded,
        )

    def _replay(self) -> int:
        """Re-feed the journal into the freshly restored runtime.

        Replay outputs are discarded: the restore rewound every
        counter and record to the checkpoint, so the replayed suffix
        re-materialises *inside* the runtime state exactly as the lost
        run did.
        """
        replayed = 0
        for unit in self._journal:
            kind = unit[0]
            if kind == "elements":
                self.inner.pipeline.feed_many(unit[1])
                replayed += len(unit[1])
            elif kind == "flush":
                self.inner.pipeline.flush()
            else:  # "feeds"
                self._dispatch_feeds(self.inner, unit[1])
                replayed += unit[2]
        return replayed

    # ------------------------------------------------------------------
    # Facade views (all guarded: reads run drain barriers on the
    # process runtimes and can themselves surface a dead worker)
    # ------------------------------------------------------------------
    @property
    def records(self):
        return self._guarded_read(lambda inner: inner.records)

    @property
    def open(self):
        return self._guarded_read(lambda inner: inner.open)

    @property
    def signal_log(self):
        return self._guarded_read(lambda inner: inner.signal_log)

    @property
    def rejected(self):
        return self._guarded_read(lambda inner: inner.rejected)

    @property
    def monitoring(self):
        return self._guarded_read(lambda inner: inner.monitoring)

    @property
    def cache(self):
        return self._guarded_read(lambda inner: inner.cache)

    @property
    def metrics(self) -> PipelineMetrics:
        view = self._guarded_read(lambda inner: inner.metrics)
        stats = self.recovery_stats
        view.recovery.restarts = stats.restarts
        view.recovery.replayed_elements = stats.replayed_elements
        view.recovery.recovery_ms = stats.recovery_ms
        view.recovery.degraded = stats.degraded
        # The runtime's own annotation counts one worker generation;
        # the supervised total spans every generation.
        view.recovery.quarantined_batches = stats.quarantined_batches
        return view

    def metrics_live(self) -> dict:
        """Live snapshot with the supervised recovery overlay.

        Unlike :attr:`metrics` this never guards, drains or triggers a
        recovery: sampling while the runtime is mid-rebuild (torn down
        between generations) returns a recovery-only snapshot instead
        of racing the recovery loop.
        """
        try:
            inner_live = getattr(self.inner, "metrics_live", None)
            if inner_live is not None:
                snap = inner_live()
            else:
                snap = self.inner.metrics.snapshot()
                snap.setdefault("depths", {})
                snap.setdefault(
                    "live", {"workers": 0, "workers_reporting": 0}
                )
        except Exception:
            # The runtime is being torn down / rebuilt under us.
            snap = {
                "stages": [],
                "bins": {},
                "gauges": {},
                "hists": {},
                "depths": {},
                "live": {"recovering": True},
            }
        stats = self.recovery_stats
        rec = dict(snap.get("recovery", {}))
        rec["restarts"] = stats.restarts
        rec["replayed_elements"] = stats.replayed_elements
        rec["recovery_ms"] = round(stats.recovery_ms, 3)
        rec["degraded"] = stats.degraded
        rec["quarantined_batches"] = stats.quarantined_batches
        snap["recovery"] = rec
        return snap

    def finalize_records(self, end_time: float | None = None):
        return self._guarded_read(
            lambda inner: inner.finalize_records(end_time)
        )

    # ------------------------------------------------------------------
    # Checkpoint surface
    # ------------------------------------------------------------------
    def checkpoint_parts(self) -> dict:
        self._take_checkpoint()
        return json.loads(self._checkpoint)

    def restore_parts(self, parts: dict) -> None:
        self._journal.clear()
        self._journal_elements = 0
        self._checkpoint = json.dumps(parts, sort_keys=True)
        try:
            self.inner.restore_parts(json.loads(self._checkpoint))
        except RecoverableWorkerError as exc:
            # _recover restores the just-stored checkpoint into the
            # fresh worker set (the journal is empty).
            self._recover(exc)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        stats = self.recovery_stats
        return (
            f"SupervisedKeplerPipeline(restarts={stats.restarts},"
            f" degraded={stats.degraded},"
            f" journal={self._journal_elements})"
        )
