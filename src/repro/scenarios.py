"""End-to-end world assembly.

Wires every substrate together the way the paper's deployment did:

* ground-truth topology (unknowable to Kepler) feeds
* noisy colocation exports -> colocation map,
* community documentation -> community dictionary,
* the policy-routing engine -> BGP streams via collectors,

and returns a :class:`World` bundling the Kepler-visible inputs with the
ground truth needed for evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.messages import BGPUpdate, StreamElement
from repro.bgp.stream import BGPStream
from repro.core.colocation import ColocationMap, build_colocation_map
from repro.core.dataplane import DataPlaneValidator
from repro.core.kepler import Kepler, KeplerParams
from repro.docmine.corpus import generate_corpus
from repro.docmine.dictionary import CommunityDictionary, build_dictionary
from repro.docmine.scraper import WebScraper
from repro.geo.geocoder import Geocoder
from repro.routing.engine import CollectorLayout, EngineParams, RoutingEngine
from repro.routing.events import InfraEvent
from repro.topology.builder import WorldParams, build_topology
from repro.topology.entities import Topology
from repro.topology.sources import export_datacentermap, export_peeringdb


@dataclass
class World:
    """A fully wired simulation world."""

    topo: Topology
    colo: ColocationMap
    dictionary: CommunityDictionary
    as2org: dict[int, str]
    engine: RoutingEngine
    seed: int = 0
    _fac_to_map: dict[str, str] = field(default_factory=dict)
    _ixp_to_map: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Ground truth <-> map-space translation (evaluation only)
    # ------------------------------------------------------------------
    def map_facility_id(self, fac_id: str) -> str | None:
        """Colocation-map id of a ground-truth facility (None if unmapped)."""
        return self._fac_to_map.get(fac_id)

    def map_ixp_id(self, ixp_id: str) -> str | None:
        return self._ixp_to_map.get(ixp_id)

    def truth_facility_ids(self, map_id: str) -> set[str]:
        fac = self.colo.facilities.get(map_id)
        return set(fac.fac_id_hints) if fac else set()

    def truth_ixp_ids(self, map_id: str) -> set[str]:
        ixp = self.colo.ixps.get(map_id)
        return set(ixp.ixp_id_hints) if ixp else set()

    def build_translation(self) -> None:
        self._fac_to_map.clear()
        self._ixp_to_map.clear()
        for map_id, fac in self.colo.facilities.items():
            for hint in fac.fac_id_hints:
                self._fac_to_map[hint] = map_id
        for map_id, ixp in self.colo.ixps.items():
            for hint in ixp.ixp_id_hints:
                self._ixp_to_map[hint] = map_id

    # ------------------------------------------------------------------
    def make_kepler(
        self,
        params: KeplerParams | None = None,
        validator: DataPlaneValidator | None = None,
    ) -> Kepler:
        return Kepler(
            dictionary=self.dictionary,
            colo=self.colo,
            as2org=self.as2org,
            params=params,
            validator=validator,
        )

    def rib_snapshot(self, time: float = 0.0) -> list[BGPUpdate]:
        return self.engine.rib_snapshot(time)

    def run_events(
        self, timed_events: list[tuple[float, InfraEvent]]
    ) -> list[StreamElement]:
        """Apply a timed event sequence; return the merged sorted stream."""
        stream = BGPStream()
        for when, event in sorted(timed_events, key=lambda te: te[0]):
            stream.push_many(self.engine.apply_event(event, when))
        return list(stream.drain())


def build_world(
    seed: int = 0,
    world_params: WorldParams | None = None,
    engine_params: EngineParams | None = None,
    layout: CollectorLayout | None = None,
    undocumented_rate: float = 0.12,
    n_tier2_vantages: int = 12,
) -> World:
    """Assemble the default world for experiments and examples.

    ``n_tier2_vantages`` sizes the collector-peer set (more vantage
    points -> more monitored paths per PoP -> better recall for small
    facilities, at a linear runtime cost).
    """
    params = world_params or WorldParams(seed=seed)
    topo = build_topology(params)
    if layout is None:
        layout = CollectorLayout.default(topo, seed=seed, n_tier2=n_tier2_vantages)

    fac_pdb, ixp_pdb = export_peeringdb(topo, seed=seed)
    fac_dcm, ixp_dcm = export_datacentermap(topo, seed=seed)
    colo = build_colocation_map(fac_pdb + fac_dcm, ixp_pdb + ixp_dcm)

    pages = generate_corpus(topo, seed=seed, undocumented_rate=undocumented_rate)
    scraper = WebScraper(pages, seed=seed)
    rs_records: dict[int, str] = {}
    for map_id, mixp in colo.ixps.items():
        for hint in mixp.ixp_id_hints:
            rs_records[topo.ixps[hint].rs_asn] = map_id
    dictionary = build_dictionary(
        scraper.crawl(), colo, geocoder=Geocoder(), rs_records=rs_records
    )

    # AS-to-organization dataset (the paper: CAIDA as2org).
    as2org = {asn: rec.org_id for asn, rec in topo.ases.items()}

    engine = RoutingEngine(
        topo,
        layout=layout or CollectorLayout.default(topo, seed=seed),
        params=engine_params or EngineParams(seed=seed),
    )
    world = World(
        topo=topo,
        colo=colo,
        dictionary=dictionary,
        as2org=as2org,
        engine=engine,
        seed=seed,
    )
    world.build_translation()
    return world


def build_validator(
    world: World,
    baseline_start: float,
    seed: int = 0,
    targets_stride: int = 6,
    daily_credits: int = 10**9,
):
    """Assemble the traceroute validator for a world.

    Builds the address plan, measurement platform, hop mapper and a
    4-week archived baseline ending just before ``baseline_start`` —
    the full data-plane stack of Section 4.4.
    """
    from repro.traceroute import (
        AddressPlan,
        HopMapper,
        MeasurementPlatform,
        TraceArchive,
        TracerouteSimulator,
        TracerouteValidator,
    )

    plan = AddressPlan(world.topo)
    simulator = TracerouteSimulator(world.engine, plan, seed=seed)
    platform = MeasurementPlatform(
        simulator=simulator, daily_credits=daily_credits, seed=seed
    )
    mapper = HopMapper(
        plan,
        ixp_truth_to_map={
            i: m for i in world.topo.ixps if (m := world.map_ixp_id(i))
        },
        fac_truth_to_map={
            f: m
            for f in world.topo.facilities
            if (m := world.map_facility_id(f))
        },
    )
    from repro.traceroute.archive import TraceArchive, WEEK_S

    archive = TraceArchive(mapper=mapper)
    targets = sorted(
        a for a, r in world.topo.ases.items() if r.originates
    )[::targets_stride]
    archive.collect_weekly(
        platform, targets, start_time=baseline_start - 4 * WEEK_S, weeks=4
    )
    from repro.traceroute.validator import TracerouteValidator

    return TracerouteValidator(platform=platform, archive=archive, mapper=mapper)


def pick_outage_target(
    world: World, rng: random.Random, kind: str = "facility", min_members: int = 8
) -> str | None:
    """Choose a random trackable outage target (ground-truth id)."""
    if kind == "facility":
        candidates = sorted(
            fac_id
            for fac_id, tenants in world.topo.facility_tenants.items()
            if len(tenants) >= min_members
            and world.map_facility_id(fac_id) is not None
        )
    else:
        candidates = sorted(
            ixp_id
            for ixp_id, members in world.topo.ixp_members.items()
            if len(members) >= min_members and world.map_ixp_id(ixp_id) is not None
        )
    if not candidates:
        return None
    return rng.choice(candidates)
