"""Noisy colocation-database exports (PeeringDB / DataCenterMap stand-ins).

Section 3.3: "Since names of facilities and facility operators are not
standardized, we use the facility address (postcode and country) to
identify common facilities among the different data sources.  We then
merge the tenants listed in each data source for the same facility ...
To identify and merge the records that refer to the same IXP we use the
URLs of the IXP websites, and the location (city/country)."

These exporters deliberately mangle names, drop tenants and omit records
so the colocation-map builder (:mod:`repro.core.colocation`) has the same
reconciliation problem the paper solves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.topology.entities import Topology


@dataclass(frozen=True)
class ColocationRecord:
    """One facility record as published by a colocation database."""

    source: str
    name: str
    operator: str
    street: str
    postcode: str
    city_name: str
    country: str
    tenants: tuple[int, ...]
    fac_id_hint: str  # carried for evaluation only, never used for merging


@dataclass(frozen=True)
class IXPRecord:
    """One IXP record as published by a colocation database."""

    source: str
    name: str
    website: str
    city_name: str
    country: str
    members: tuple[int, ...]
    facility_postcodes: tuple[str, ...]
    ixp_id_hint: str


def _mangle_name(rng: random.Random, name: str, style: str) -> str:
    """Source-specific naming conventions for the same building."""
    if style == "dcm":
        # DataCenterMap style: "OPERATOR - City (campus)" variations.
        parts = name.split()
        if len(parts) >= 2:
            return f"{parts[0].upper()} - {' '.join(parts[1:])}"
        return name.upper()
    if style == "abbrev" and len(name) > 12:
        return name.replace("Amsterdam", "AMS").replace("Frankfurt", "FRA")
    return name


def export_peeringdb(
    topo: Topology, seed: int = 0
) -> tuple[list[ColocationRecord], list[IXPRecord]]:
    """High-coverage export: ~97% of facilities, ~90% of tenants listed."""
    rng = random.Random(seed ^ 0x5EED)
    fac_records: list[ColocationRecord] = []
    for fac_id in sorted(topo.facilities):
        fac = topo.facilities[fac_id]
        if rng.random() < 0.03:  # a few facilities simply missing
            continue
        tenants = sorted(
            asn for asn in topo.facility_tenants[fac_id] if rng.random() < 0.95
        )
        fac_records.append(
            ColocationRecord(
                source="peeringdb",
                name=_mangle_name(rng, fac.name, "abbrev"),
                operator=fac.operator,
                street=fac.address.street,
                postcode=fac.address.postcode,
                city_name=fac.address.city_name,
                country=fac.address.country,
                tenants=tuple(tenants),
                fac_id_hint=fac_id,
            )
        )
    ixp_records: list[IXPRecord] = []
    for ixp_id in sorted(topo.ixps):
        ixp = topo.ixps[ixp_id]
        members = sorted(
            asn for asn in topo.ixp_members[ixp_id] if rng.random() < 0.95
        )
        postcodes = tuple(
            topo.facilities[f].address.postcode for f in ixp.facility_ids
        )
        ixp_records.append(
            IXPRecord(
                source="peeringdb",
                name=ixp.name,
                website=ixp.website,
                city_name=ixp.city.name,
                country=ixp.city.country,
                members=tuple(members),
                facility_postcodes=postcodes,
                ixp_id_hint=ixp_id,
            )
        )
    return fac_records, ixp_records


def export_datacentermap(
    topo: Topology, seed: int = 0
) -> tuple[list[ColocationRecord], list[IXPRecord]]:
    """Lower-coverage export with different naming and tenant subsets."""
    rng = random.Random(seed ^ 0xDC3A)
    fac_records: list[ColocationRecord] = []
    for fac_id in sorted(topo.facilities):
        fac = topo.facilities[fac_id]
        if rng.random() < 0.20:  # notably less complete than PeeringDB
            continue
        tenants = sorted(
            asn for asn in topo.facility_tenants[fac_id] if rng.random() < 0.85
        )
        fac_records.append(
            ColocationRecord(
                source="datacentermap",
                name=_mangle_name(rng, fac.name, "dcm"),
                operator=fac.operator.upper(),
                street=fac.address.street,
                postcode=fac.address.postcode,
                city_name=fac.address.city_name,
                country=fac.address.country,
                tenants=tuple(tenants),
                fac_id_hint=fac_id,
            )
        )
    ixp_records: list[IXPRecord] = []
    for ixp_id in sorted(topo.ixps):
        ixp = topo.ixps[ixp_id]
        if rng.random() < 0.25:
            continue
        members = sorted(
            asn for asn in topo.ixp_members[ixp_id] if rng.random() < 0.75
        )
        # DataCenterMap styles IXP names differently ("AMS-IX Amsterdam").
        name = f"{ixp.name} {ixp.city.name}" if ixp.city.name not in ixp.name else ixp.name
        postcodes = tuple(
            topo.facilities[f].address.postcode for f in ixp.facility_ids
        )
        ixp_records.append(
            IXPRecord(
                source="datacentermap",
                name=name,
                website=ixp.website,
                city_name=ixp.city.name,
                country=ixp.city.country,
                members=tuple(members),
                facility_postcodes=postcodes,
                ixp_id_hint=ixp_id,
            )
        )
    return fac_records, ixp_records
