"""Core topology entities: organizations, ASes, facilities, IXPs.

These are the ground-truth objects the rest of the system observes only
indirectly — through BGP updates, community documentation, and noisy
colocation databases — exactly the epistemic position Kepler is in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.geo.cities import City

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.topology.communities import CommunityScheme, RouteServerScheme


class ASTier(enum.Enum):
    """Coarse position of an AS in the inter-domain hierarchy."""

    TIER1 = "tier1"
    TIER2 = "tier2"
    ACCESS = "access"  # eyeball / regional access networks
    CONTENT = "content"  # content providers, CDNs, clouds


class Relationship(enum.Enum):
    """Gao-Rexford business relationship between two ASes."""

    CUSTOMER_PROVIDER = "c2p"
    PEER_PEER = "p2p"


@dataclass(frozen=True)
class Organization:
    """An operator that may run several sibling ASes (Section 4.3)."""

    org_id: str
    name: str
    country: str


@dataclass(frozen=True)
class Address:
    """Building-level address of a facility (Section 3.3).

    The postcode + country pair is the merge key used to identify the same
    facility across colocation databases with inconsistent naming.
    """

    street: str
    postcode: str
    city_name: str
    country: str


@dataclass
class AutonomousSystem:
    """An autonomous system, possibly one of an organization's siblings."""

    asn: int
    name: str
    org_id: str
    tier: ASTier
    home_city: City
    uses_communities: bool = False
    scheme: "CommunityScheme | None" = None
    prefixes_v4: tuple[str, ...] = ()
    prefixes_v6: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 1 <= self.asn <= 4_294_967_295:
            raise ValueError(f"invalid ASN {self.asn}")

    @property
    def originates(self) -> bool:
        return bool(self.prefixes_v4 or self.prefixes_v6)


@dataclass(frozen=True)
class Facility:
    """A colocation facility (carrier-neutral interconnection building)."""

    fac_id: str
    name: str
    operator: str
    city: City
    address: Address
    lat: float
    lon: float


@dataclass(frozen=True)
class IXPPort:
    """A member's physical port on an IXP fabric.

    ``facility_id`` is the building hosting the port.  For remote peering
    the member has no presence in that building: it reaches the port over
    a layer-2 reseller (Section 6.4), so the member's routers may be
    hundreds of km from the fabric.
    """

    ixp_id: str
    asn: int
    facility_id: str
    remote: bool = False
    reseller: str | None = None


@dataclass(frozen=True)
class IXP:
    """An Internet exchange point: a layer-2 fabric spanning facilities."""

    ixp_id: str
    name: str
    rs_asn: int  # ASN of the route servers
    city: City
    website: str
    facility_ids: tuple[str, ...]  # buildings hosting switch fabric

    def __post_init__(self) -> None:
        if not self.facility_ids:
            raise ValueError(f"IXP {self.name} must span at least one facility")


@dataclass
class Topology:
    """The complete ground-truth world.

    All membership dictionaries are total over their key space (every
    facility/IXP/AS appears, possibly with an empty set) — this keeps
    downstream lookups simple and explicit.
    """

    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    orgs: dict[str, Organization] = field(default_factory=dict)
    facilities: dict[str, Facility] = field(default_factory=dict)
    ixps: dict[str, IXP] = field(default_factory=dict)

    # AS <-> facility presence.
    facility_tenants: dict[str, set[int]] = field(default_factory=dict)
    as_facilities: dict[int, set[str]] = field(default_factory=dict)

    # AS <-> IXP membership with port-level detail.
    ixp_members: dict[str, set[int]] = field(default_factory=dict)
    ixp_ports: dict[tuple[str, int], IXPPort] = field(default_factory=dict)

    # Business relationships.
    providers: dict[int, set[int]] = field(default_factory=dict)
    peers: set[frozenset[int]] = field(default_factory=set)

    # Private interconnects: unordered AS pair -> facilities hosting a PNI.
    pnis: dict[frozenset[int], set[str]] = field(default_factory=dict)

    # Route server schemes per IXP.
    rs_schemes: dict[str, "RouteServerScheme"] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def customers(self, asn: int) -> set[int]:
        """ASes that buy transit from ``asn``."""
        return {a for a, provs in self.providers.items() if asn in provs}

    def siblings(self, asn: int) -> set[int]:
        """All ASes under the same organization, including ``asn``."""
        org = self.ases[asn].org_id
        return {a for a, rec in self.ases.items() if rec.org_id == org}

    def as_ixps(self, asn: int) -> set[str]:
        """IXPs where the AS is a member."""
        return {ixp_id for ixp_id, members in self.ixp_members.items() if asn in members}

    def common_facilities(self, asn_a: int, asn_b: int) -> set[str]:
        """Facilities where both ASes have a physical presence."""
        return self.as_facilities.get(asn_a, set()) & self.as_facilities.get(asn_b, set())

    def common_ixps(self, asn_a: int, asn_b: int) -> set[str]:
        return self.as_ixps(asn_a) & self.as_ixps(asn_b)

    def facilities_in_city(self, city_name: str) -> set[str]:
        return {
            fac_id
            for fac_id, fac in self.facilities.items()
            if fac.city.name == city_name
        }

    def ixps_at_facility(self, fac_id: str) -> set[str]:
        """IXPs with switching fabric hosted in the given building."""
        return {
            ixp_id for ixp_id, ixp in self.ixps.items() if fac_id in ixp.facility_ids
        }

    def validate(self) -> None:
        """Check referential integrity; raise ``ValueError`` on violation."""
        for asn, facs in self.as_facilities.items():
            if asn not in self.ases:
                raise ValueError(f"as_facilities references unknown ASN {asn}")
            for fac_id in facs:
                if fac_id not in self.facilities:
                    raise ValueError(f"unknown facility {fac_id} for AS{asn}")
                if asn not in self.facility_tenants.get(fac_id, set()):
                    raise ValueError(
                        f"asymmetric facility membership AS{asn}@{fac_id}"
                    )
        for ixp_id, members in self.ixp_members.items():
            if ixp_id not in self.ixps:
                raise ValueError(f"unknown IXP {ixp_id}")
            for asn in members:
                port = self.ixp_ports.get((ixp_id, asn))
                if port is None:
                    raise ValueError(f"member AS{asn} of {ixp_id} has no port")
                if port.facility_id not in self.ixps[ixp_id].facility_ids:
                    raise ValueError(
                        f"port of AS{asn} at {ixp_id} is outside the fabric"
                    )
        for pair in self.peers:
            if len(pair) != 2:
                raise ValueError(f"malformed peer pair {set(pair)}")
        for asn, provs in self.providers.items():
            if asn in provs:
                raise ValueError(f"AS{asn} is its own provider")
        for pair, facs in self.pnis.items():
            for fac_id in facs:
                if fac_id not in self.facilities:
                    raise ValueError(f"PNI {set(pair)} at unknown facility {fac_id}")
