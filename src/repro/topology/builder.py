"""Synthetic world builder.

Generates the ground-truth :class:`~repro.topology.entities.Topology`:
cities get facilities (EU/NA-heavy, matching Table 1), facilities get
tenants with a skewed membership distribution (Figure 7b), IXPs span
multiple facilities in their metro (the DE-CIX/Equinix-FR5 symbiosis of
Section 2), ASes get Gao-Rexford relationships, physical interconnections
and per-operator community schemes.

Flagship infrastructures referenced by the paper's case studies (AMS-IX
and the SARA facility; LINX, Telehouse East/North, Telecity Harbour
Exchange; DE-CIX Frankfurt) are created deterministically with their real
names so the benchmarks can replay the case studies of Section 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.geo.cities import City, WORLD_CITIES, city_by_name
from repro.topology.communities import (
    CommunityScheme,
    CommunityTag,
    OUTBOUND_ACTIONS,
    RouteServerScheme,
    TagKind,
)
from repro.topology.entities import (
    Address,
    ASTier,
    AutonomousSystem,
    Facility,
    IXP,
    IXPPort,
    Organization,
    Topology,
)

#: Facility operators used for generated names.
FACILITY_OPERATORS = (
    "Equinix",
    "Interxion",
    "Telehouse",
    "Digital Realty",
    "CoreSite",
    "Global Switch",
    "Telecity",
    "NTT",
    "Colt",
    "Zayo",
)

#: Layer-2 resellers enabling remote peering (Section 6.4).
RESELLERS = ("IXReach", "Console", "Epsilon", "Megaport")

#: Share of generated facilities per continent (approximates Table 1:
#: Europe 878/1742, North America 529, Asia/Pacific 233, SA 76, AF 26).
CONTINENT_FACILITY_SHARE = {"EU": 0.50, "NA": 0.30, "AP": 0.13, "SA": 0.045, "AF": 0.025}

#: Probability that an AS of a given tier uses (and documents) location
#: communities.  Calibrated so ~50% of IPv4 paths carry a location tag
#: (Figure 7c) and all-but-two Tier-1s are covered (Section 3.2).
COMMUNITY_USE_RATE = {
    ASTier.TIER1: 1.0,  # two Tier-1s are exempted explicitly below
    ASTier.TIER2: 0.60,
    ASTier.CONTENT: 0.45,
    ASTier.ACCESS: 0.30,
}


@dataclass
class WorldParams:
    """Knobs of the synthetic world.  Defaults build a seconds-scale world."""

    seed: int = 0
    n_tier1: int = 8
    n_tier2: int = 40
    n_access: int = 130
    n_content: int = 40
    n_facilities: int = 90
    n_ixps: int = 22
    #: Fraction of IXP memberships that are remote (Castro et al.: ~20%).
    remote_peering_rate: float = 0.20
    #: Fraction of organizations operating sibling ASes.
    sibling_rate: float = 0.08
    #: Probability that a route-server member participates in multilateral
    #: peering (Richter et al.: the large majority).
    rs_participation: float = 0.85

    def __post_init__(self) -> None:
        if self.n_tier1 < 3:
            raise ValueError("need at least 3 Tier-1 ASes for a clique")
        if not 0.0 <= self.remote_peering_rate <= 1.0:
            raise ValueError("remote_peering_rate must be a probability")


# ----------------------------------------------------------------------
# Flagship infrastructure (real names used by the paper's case studies)
# ----------------------------------------------------------------------

_FLAGSHIP_FACILITIES = (
    # (fac_id, name, operator, city, street)
    ("sara-ams", "SARA Amsterdam", "SURFsara", "Amsterdam", "Science Park 140"),
    ("nikhef-ams", "Nikhef Amsterdam", "Nikhef", "Amsterdam", "Science Park 105"),
    ("gs-ams", "Global Switch Amsterdam", "Global Switch", "Amsterdam", "Johan Huizingalaan 759"),
    ("eqx-am3", "Equinix AM3", "Equinix", "Amsterdam", "Science Park 610"),
    ("th-north", "Telehouse North", "Telehouse", "London", "Coriander Avenue 14"),
    ("th-east", "Telehouse East", "Telehouse", "London", "Coriander Avenue 18"),
    ("tc-hex89", "Telecity Harbour Exchange 8&9", "Telecity", "London", "Harbour Exchange Square 8"),
    ("eqx-ld8", "Equinix LD8", "Equinix", "London", "Harbour Exchange Square 6"),
    ("inx-lon1", "Interxion LON1", "Interxion", "London", "Hanbury Street 11"),
    ("eqx-fr5", "Equinix FR5", "Equinix", "Frankfurt", "Kleyerstrasse 90"),
    ("inx-fra3", "Interxion FRA3", "Interxion", "Frankfurt", "Weismuellerstrasse 19"),
    ("ancotel-fra", "Ancotel Frankfurt", "Ancotel", "Frankfurt", "Kleyerstrasse 75"),
    ("eqx-ny9", "Equinix NY9", "Equinix", "New York", "Hudson Street 111"),
    ("eqx-dc2", "Equinix DC2", "Equinix", "Ashburn", "Filigree Court 21715"),
)

_FLAGSHIP_IXPS = (
    # (ixp_id, name, city, fabric fac_ids)
    ("ams-ix", "AMS-IX", "Amsterdam", ("sara-ams", "nikhef-ams", "gs-ams", "eqx-am3")),
    ("linx", "LINX", "London", ("th-north", "th-east", "tc-hex89", "eqx-ld8")),
    ("de-cix", "DE-CIX Frankfurt", "Frankfurt", ("eqx-fr5", "inx-fra3", "ancotel-fra")),
)


@dataclass
class _Allocator:
    """Deterministic ASN / prefix / id allocation."""

    next_prefix_index: int = 0
    next_v6_index: int = 0
    tier_asn_next: dict[ASTier, int] = field(
        default_factory=lambda: {
            ASTier.TIER1: 100,
            ASTier.TIER2: 1000,
            ASTier.ACCESS: 20000,
            ASTier.CONTENT: 30000,
        }
    )
    rs_asn_next: int = 59000

    def asn(self, tier: ASTier) -> int:
        value = self.tier_asn_next[tier]
        self.tier_asn_next[tier] = value + 1
        return value

    def rs_asn(self) -> int:
        value = self.rs_asn_next
        self.rs_asn_next += 1
        return value

    def prefix_v4(self) -> str:
        idx = self.next_prefix_index
        self.next_prefix_index += 1
        return f"{10 + ((idx >> 16) & 0x7F)}.{(idx >> 8) & 0xFF}.{idx & 0xFF}.0/24"

    def prefix_v6(self) -> str:
        idx = self.next_v6_index
        self.next_v6_index += 1
        return f"2001:db8:{idx:x}::/48"


def _postcode(rng: random.Random, city: City) -> str:
    return f"{city.iata}{rng.randint(10, 99)} {rng.randint(1, 9)}{chr(rng.randint(65, 90))}"


def _facility_coords(rng: random.Random, city: City) -> tuple[float, float]:
    """Facilities scatter within ~15 km of the city centre."""
    return (
        city.lat + rng.uniform(-0.12, 0.12),
        city.lon + rng.uniform(-0.12, 0.12),
    )


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in text.lower()).strip("-")


class _Builder:
    """Stateful builder; one instance per :func:`build_topology` call."""

    def __init__(self, params: WorldParams) -> None:
        self.params = params
        self.rng = random.Random(params.seed)
        self.alloc = _Allocator()
        self.topo = Topology()
        #: facility attractiveness weight (size proxy), fac_id -> weight
        self.fac_weight: dict[str, float] = {}

    # ------------------------------------------------------------------
    def build(self) -> Topology:
        self._build_facilities()
        self._build_ixps()
        self._build_ases()
        self._assign_facility_presence()
        self._assign_ixp_membership()
        self._build_relationships()
        self._build_pnis()
        self._assign_prefixes()
        self._assign_community_schemes()
        self.topo.validate()
        return self.topo

    # ------------------------------------------------------------------
    def _add_facility(
        self, fac_id: str, name: str, operator: str, city: City, street: str
    ) -> None:
        lat, lon = _facility_coords(self.rng, city)
        fac = Facility(
            fac_id=fac_id,
            name=name,
            operator=operator,
            city=city,
            address=Address(
                street=street,
                postcode=_postcode(self.rng, city),
                city_name=city.name,
                country=city.country,
            ),
            lat=lat,
            lon=lon,
        )
        self.topo.facilities[fac_id] = fac
        self.topo.facility_tenants[fac_id] = set()
        # Attractiveness: lognormal-ish, flagship sites get a boost below.
        self.fac_weight[fac_id] = self.rng.lognormvariate(0.0, 1.0)

    def _build_facilities(self) -> None:
        for fac_id, name, operator, city_name, street in _FLAGSHIP_FACILITIES:
            city = city_by_name(city_name)
            assert city is not None
            self._add_facility(fac_id, name, operator, city, street)
            self.fac_weight[fac_id] += 4.0  # flagships are large hubs

        remaining = max(0, self.params.n_facilities - len(_FLAGSHIP_FACILITIES))
        cities_by_cont: dict[str, list[City]] = {}
        for city in WORLD_CITIES:
            cities_by_cont.setdefault(city.continent, []).append(city)
        counters: dict[str, int] = {}
        for _ in range(remaining):
            cont = self.rng.choices(
                list(CONTINENT_FACILITY_SHARE),
                weights=list(CONTINENT_FACILITY_SHARE.values()),
            )[0]
            city = self.rng.choice(cities_by_cont[cont])
            operator = self.rng.choice(FACILITY_OPERATORS)
            counters[city.iata] = counters.get(city.iata, 0) + 1
            name = f"{operator} {city.iata}{counters[city.iata]}"
            fac_id = _slug(name)
            if fac_id in self.topo.facilities:  # operator+city+idx collision
                fac_id = f"{fac_id}-{len(self.topo.facilities)}"
            street = f"{self.rng.randint(1, 400)} {self.rng.choice(('Main St', 'Docklands Rd', 'Industrieweg', 'Data Park', 'Exchange Sq'))}"
            self._add_facility(fac_id, name, operator, city, street)

    # ------------------------------------------------------------------
    def _build_ixps(self) -> None:
        for ixp_id, name, city_name, fabric in _FLAGSHIP_IXPS:
            city = city_by_name(city_name)
            assert city is not None
            self._register_ixp(ixp_id, name, city, tuple(fabric))

        remaining = max(0, self.params.n_ixps - len(_FLAGSHIP_IXPS))
        # Candidate cities: have facilities, no IXP yet, weighted to EU.
        by_city: dict[str, list[str]] = {}
        for fac_id, fac in self.topo.facilities.items():
            by_city.setdefault(fac.city.name, []).append(fac_id)
        taken = {ixp.city.name for ixp in self.topo.ixps.values()}
        candidates = [c for c in by_city if c not in taken]
        self.rng.shuffle(candidates)
        for city_name in candidates[:remaining]:
            city = city_by_name(city_name)
            assert city is not None
            facs = sorted(by_city[city_name])
            fabric_size = min(len(facs), self.rng.randint(1, 3))
            fabric = tuple(self.rng.sample(facs, fabric_size))
            name = f"{city.iata}-IX"
            self._register_ixp(_slug(name), name, city, fabric)

    def _register_ixp(
        self, ixp_id: str, name: str, city: City, fabric: tuple[str, ...]
    ) -> None:
        rs_asn = self.alloc.rs_asn()
        ixp = IXP(
            ixp_id=ixp_id,
            name=name,
            rs_asn=rs_asn,
            city=city,
            website=f"https://www.{ixp_id}.net",
            facility_ids=fabric,
        )
        self.topo.ixps[ixp_id] = ixp
        self.topo.ixp_members[ixp_id] = set()
        self.topo.rs_schemes[ixp_id] = RouteServerScheme(ixp_id=ixp_id, rs_asn=rs_asn)

    # ------------------------------------------------------------------
    def _build_ases(self) -> None:
        tier_counts = (
            (ASTier.TIER1, self.params.n_tier1),
            (ASTier.TIER2, self.params.n_tier2),
            (ASTier.ACCESS, self.params.n_access),
            (ASTier.CONTENT, self.params.n_content),
        )
        org_counter = 0
        for tier, count in tier_counts:
            for i in range(count):
                org_counter += 1
                home = self._home_city(tier)
                org_id = f"org-{org_counter}"
                org_name = f"{tier.value.capitalize()} Networks {org_counter}"
                self.topo.orgs[org_id] = Organization(org_id, org_name, home.country)
                n_siblings = 1
                if tier in (ASTier.TIER1, ASTier.TIER2) and (
                    self.rng.random() < self.params.sibling_rate
                ):
                    n_siblings = self.rng.randint(2, 3)
                for s in range(n_siblings):
                    asn = self.alloc.asn(tier)
                    suffix = "" if s == 0 else f" Sub{s}"
                    self.topo.ases[asn] = AutonomousSystem(
                        asn=asn,
                        name=f"AS{asn} {org_name}{suffix}",
                        org_id=org_id,
                        tier=tier,
                        home_city=home,
                    )
                    self.topo.as_facilities[asn] = set()

    def _home_city(self, tier: ASTier) -> City:
        cities_with_fac = sorted(
            {fac.city.name for fac in self.topo.facilities.values()}
        )
        name = self.rng.choice(cities_with_fac)
        city = city_by_name(name)
        assert city is not None
        return city

    # ------------------------------------------------------------------
    def _assign_facility_presence(self) -> None:
        fac_ids = sorted(self.topo.facilities)
        weights = [self.fac_weight[f] for f in fac_ids]
        presence_range = {
            ASTier.TIER1: (15, 35),
            ASTier.TIER2: (4, 12),
            ASTier.CONTENT: (3, 10),
            ASTier.ACCESS: (1, 3),
        }
        for asn in sorted(self.topo.ases):
            rec = self.topo.ases[asn]
            lo, hi = presence_range[rec.tier]
            count = min(len(fac_ids), self.rng.randint(lo, hi))
            # Home-city facilities always included for non-global ASes.
            home_facs = sorted(self.topo.facilities_in_city(rec.home_city.name))
            chosen: set[str] = set()
            if home_facs and rec.tier in (ASTier.ACCESS, ASTier.TIER2):
                chosen.add(self.rng.choice(home_facs))
            while len(chosen) < count:
                pick = self.rng.choices(fac_ids, weights=weights)[0]
                chosen.add(pick)
            for fac_id in chosen:
                self._place(asn, fac_id)

    def _place(self, asn: int, fac_id: str) -> None:
        self.topo.as_facilities[asn].add(fac_id)
        self.topo.facility_tenants[fac_id].add(asn)

    # ------------------------------------------------------------------
    def _assign_ixp_membership(self) -> None:
        join_rate = {
            ASTier.TIER1: 0.25,
            ASTier.TIER2: 0.65,
            ASTier.CONTENT: 0.80,
            ASTier.ACCESS: 0.70,
        }
        for ixp_id in sorted(self.topo.ixps):
            ixp = self.topo.ixps[ixp_id]
            fabric = set(ixp.facility_ids)
            # Local members: tenants of fabric buildings.
            local_candidates = sorted(
                {
                    asn
                    for fac_id in fabric
                    for asn in self.topo.facility_tenants[fac_id]
                }
            )
            for asn in local_candidates:
                if self.rng.random() >= join_rate[self.topo.ases[asn].tier]:
                    continue
                port_options = sorted(self.topo.as_facilities[asn] & fabric)
                port_fac = self.rng.choice(port_options)
                self._join_ixp(ixp_id, asn, port_fac, remote=False)
            # Remote members via resellers (Section 6.4).
            n_local = len(self.topo.ixp_members[ixp_id])
            n_remote = int(
                n_local
                * self.params.remote_peering_rate
                / max(1e-9, 1.0 - self.params.remote_peering_rate)
            )
            outsiders = sorted(
                asn
                for asn, rec in self.topo.ases.items()
                if asn not in self.topo.ixp_members[ixp_id]
                and rec.tier in (ASTier.ACCESS, ASTier.CONTENT, ASTier.TIER2)
            )
            for asn in self.rng.sample(outsiders, min(n_remote, len(outsiders))):
                port_fac = self.rng.choice(sorted(fabric))
                self._join_ixp(
                    ixp_id, asn, port_fac, remote=True,
                    reseller=self.rng.choice(RESELLERS),
                )

    def _join_ixp(
        self,
        ixp_id: str,
        asn: int,
        port_fac: str,
        remote: bool,
        reseller: str | None = None,
    ) -> None:
        self.topo.ixp_members[ixp_id].add(asn)
        self.topo.ixp_ports[(ixp_id, asn)] = IXPPort(
            ixp_id=ixp_id,
            asn=asn,
            facility_id=port_fac,
            remote=remote,
            reseller=reseller,
        )

    # ------------------------------------------------------------------
    def _build_relationships(self) -> None:
        tiers: dict[ASTier, list[int]] = {t: [] for t in ASTier}
        for asn in sorted(self.topo.ases):
            tiers[self.topo.ases[asn].tier].append(asn)
            self.topo.providers[asn] = set()

        # Tier-1 clique.
        t1 = tiers[ASTier.TIER1]
        for i, a in enumerate(t1):
            for b in t1[i + 1 :]:
                self.topo.peers.add(frozenset((a, b)))

        # Tier-2: 1-3 Tier-1 providers; peer with other Tier-2s at common IXPs.
        for asn in tiers[ASTier.TIER2]:
            for prov in self.rng.sample(t1, self.rng.randint(1, 3)):
                self.topo.providers[asn].add(prov)
        t2 = tiers[ASTier.TIER2]
        for i, a in enumerate(t2):
            for b in t2[i + 1 :]:
                prob = 0.30 if self.topo.common_ixps(a, b) else 0.04
                if self.rng.random() < prob:
                    self.topo.peers.add(frozenset((a, b)))

        # Edge ASes: providers from Tier-2 (mostly) or Tier-1.
        for tier in (ASTier.ACCESS, ASTier.CONTENT):
            for asn in tiers[tier]:
                n_prov = self.rng.randint(1, 3)
                pool = t2 if self.rng.random() < 0.85 else t1
                for prov in self.rng.sample(pool, min(n_prov, len(pool))):
                    self.topo.providers[asn].add(prov)

        # Multilateral peering: route-server participants peer pairwise.
        for ixp_id in sorted(self.topo.ixps):
            participants = sorted(
                asn
                for asn in self.topo.ixp_members[ixp_id]
                if self.rng.random() < self.params.rs_participation
            )
            for i, a in enumerate(participants):
                for b in participants[i + 1 :]:
                    if self._related(a, b):
                        continue
                    self.topo.peers.add(frozenset((a, b)))

    def _related(self, a: int, b: int) -> bool:
        return (
            b in self.topo.providers.get(a, set())
            or a in self.topo.providers.get(b, set())
            or self.topo.ases[a].org_id == self.topo.ases[b].org_id
        )

    # ------------------------------------------------------------------
    def _build_pnis(self) -> None:
        """Realise links physically: PNIs for c2p and big p2p pairs."""
        # Provider-customer links need at least one common building.
        for asn in sorted(self.topo.providers):
            for prov in sorted(self.topo.providers[asn]):
                common = self.topo.common_facilities(asn, prov)
                if not common:
                    # Customer bought a cross-connect in a provider site.
                    prov_facs = sorted(self.topo.as_facilities[prov])
                    fac_id = self.rng.choice(prov_facs)
                    self._place(asn, fac_id)
                    common = {fac_id}
                n_pnis = min(len(common), self.rng.randint(1, 2))
                chosen = set(self.rng.sample(sorted(common), n_pnis))
                self.topo.pnis[frozenset((asn, prov))] = chosen

        # Some peer pairs with common buildings also hold PNIs (bilateral
        # private peering); others rely purely on IXP fabric.
        for pair in sorted(self.topo.peers, key=sorted):
            a, b = sorted(pair)
            tier_a, tier_b = self.topo.ases[a].tier, self.topo.ases[b].tier
            common = self.topo.common_facilities(a, b)
            if not common:
                continue
            prob = 0.9 if ASTier.TIER1 in (tier_a, tier_b) else 0.25
            if self.rng.random() < prob:
                n_pnis = min(len(common), self.rng.randint(1, 3))
                self.topo.pnis[pair] = set(self.rng.sample(sorted(common), n_pnis))

    # ------------------------------------------------------------------
    def _assign_prefixes(self) -> None:
        count_range = {
            ASTier.TIER1: (2, 4),
            ASTier.TIER2: (2, 6),
            ASTier.CONTENT: (2, 8),
            ASTier.ACCESS: (1, 6),
        }
        for asn in sorted(self.topo.ases):
            rec = self.topo.ases[asn]
            lo, hi = count_range[rec.tier]
            n_v4 = self.rng.randint(lo, hi)
            rec.prefixes_v4 = tuple(self.alloc.prefix_v4() for _ in range(n_v4))
            # IPv6 deployment is partial: ~60% of ASes.
            if self.rng.random() < 0.6:
                n_v6 = max(1, n_v4 // 2)
                rec.prefixes_v6 = tuple(
                    self.alloc.prefix_v6() for _ in range(n_v6)
                )

    # ------------------------------------------------------------------
    def _assign_community_schemes(self) -> None:
        non_users_left = 2  # the two Tier-1s absent from the dictionary
        for asn in sorted(self.topo.ases):
            rec = self.topo.ases[asn]
            use = self.rng.random() < COMMUNITY_USE_RATE[rec.tier]
            if rec.tier is ASTier.TIER1 and non_users_left > 0 and (
                asn % 5 == 3  # deterministic pick of the exempt Tier-1s
            ):
                use = False
                non_users_left -= 1
            if not use:
                continue
            rec.uses_communities = True
            rec.scheme = self._make_scheme(asn)

    def _make_scheme(self, asn: int) -> CommunityScheme:
        rec = self.topo.ases[asn]
        base = self.rng.choice((1000, 2000, 3000, 10000, 20000, 50000))
        granularity_roll = self.rng.random()
        ingress: dict[int, CommunityTag] = {}
        value = base
        cities = sorted(
            {self.topo.facilities[f].city.name for f in self.topo.as_facilities[asn]}
        )
        if granularity_roll < 0.30 and rec.tier in (ASTier.TIER1, ASTier.TIER2):
            # Facility-granularity scheme (plus IXP tags, like Init7).
            for fac_id in sorted(self.topo.as_facilities[asn]):
                ingress[value] = CommunityTag(TagKind.FACILITY, fac_id)
                value += 1
            for ixp_id in sorted(self.topo.as_ixps(asn)):
                ingress[value] = CommunityTag(TagKind.IXP, ixp_id)
                value += 1
        elif granularity_roll < 0.45:
            # IXP-granularity scheme.
            for ixp_id in sorted(self.topo.as_ixps(asn)):
                ingress[value] = CommunityTag(TagKind.IXP, ixp_id)
                value += 1
            if not ingress:  # no IXPs: fall back to city tags
                for city in cities:
                    ingress[value] = CommunityTag(TagKind.CITY, city)
                    value += 1
        else:
            # City-granularity scheme (the majority, Section 3.3).
            for city in cities:
                ingress[value] = CommunityTag(TagKind.CITY, city)
                value += 1
        outbound: dict[int, str] = {}
        out_value = base + 500
        for action in self.rng.sample(
            OUTBOUND_ACTIONS, self.rng.randint(1, len(OUTBOUND_ACTIONS))
        ):
            outbound[out_value] = action
            out_value += 1
        return CommunityScheme(
            asn=asn,
            ingress=ingress,
            outbound=outbound,
            ipv6_tagging_rate=self.rng.uniform(0.4, 0.8),
        )


def build_topology(params: WorldParams | None = None) -> Topology:
    """Build a ground-truth world from ``params`` (defaults if omitted)."""
    return _Builder(params or WorldParams()).build()
