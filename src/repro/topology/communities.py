"""Per-operator BGP community schemes (ground truth).

Every community-using AS defines a scheme mapping 16-bit values to
meanings.  Ingress values tag where a route entered the network — at
city, facility, or IXP granularity (Section 3.2, Figure 4) — and outbound
values encode traffic-engineering *actions* ("announce to", "prepend at",
"do not export"), which the paper's NLP pipeline must filter out via
active/passive voice analysis.

Route servers use a separate redistribution scheme (RFC 7948-style): any
community whose top 16 bits equal the route-server ASN marks a route as
having traversed that IXP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bgp.communities import Community


class TagKind(enum.Enum):
    """Granularity of a location-encoding ingress community."""

    CITY = "city"
    FACILITY = "facility"
    IXP = "ixp"


@dataclass(frozen=True)
class CommunityTag:
    """The meaning of one ingress community value.

    ``target_id`` is a city name for CITY tags, a facility id for FACILITY
    tags, and an IXP id for IXP tags.
    """

    kind: TagKind
    target_id: str


#: Outbound (action) community verbs, used as documentation noise the
#: dictionary builder must reject.
OUTBOUND_ACTIONS = (
    "announce",
    "prepend once",
    "prepend twice",
    "block",
    "set local-preference 80",
    "blackhole",
)


@dataclass
class CommunityScheme:
    """Ground-truth community scheme of one AS.

    ``ingress`` maps the low 16 bits of a community to its location tag;
    ``outbound`` maps values to action strings.  Value spaces are disjoint
    by construction (checked in ``__post_init__``).
    """

    asn: int
    ingress: dict[int, CommunityTag] = field(default_factory=dict)
    outbound: dict[int, str] = field(default_factory=dict)
    #: Probability the AS attaches its ingress community on IPv6 routes.
    #: ISPs invest less in IPv6 TE (Section 5.2) — hence lower coverage.
    ipv6_tagging_rate: float = 0.6

    def __post_init__(self) -> None:
        overlap = set(self.ingress) & set(self.outbound)
        if overlap:
            raise ValueError(f"AS{self.asn}: values used both ways: {overlap}")
        for value in list(self.ingress) + list(self.outbound):
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"community value {value} out of 16-bit range")

    # ------------------------------------------------------------------
    def community_for(self, kind: TagKind, target_id: str) -> Community | None:
        """The full community this AS attaches for a given ingress point."""
        for value, tag in self.ingress.items():
            if tag.kind is kind and tag.target_id == target_id:
                return Community(self.asn, value)
        return None

    def tag_of(self, community: Community) -> CommunityTag | None:
        """Decode a community if it is one of this AS's ingress values."""
        if community.asn != self.asn:
            return None
        return self.ingress.get(community.value)

    def ingress_communities(self) -> list[Community]:
        return [Community(self.asn, value) for value in sorted(self.ingress)]

    def granularities(self) -> set[TagKind]:
        return {tag.kind for tag in self.ingress.values()}


@dataclass(frozen=True)
class RouteServerScheme:
    """Redistribution communities used by an IXP route server.

    A route carrying any community with ``rs_asn`` in the top 16 bits
    traversed the IXP (Section 3.2, "IXP Path Redistribution
    Communities").
    """

    ixp_id: str
    rs_asn: int
    #: Conventional redistribution values (announce-to-all, block-all, ...).
    values: tuple[int, ...] = (0, 1, 666, 1000)

    def marker(self) -> Community:
        """The community the route server stamps on redistributed routes."""
        return Community(self.rs_asn, self.values[0])

    def matches(self, community: Community) -> bool:
        return community.asn == self.rs_asn
