"""Internet topology substrate.

Synthetic but realistic inter-domain topology: organizations with sibling
ASes, tiered ASes, colocation facilities with building-level addresses,
IXPs with multi-facility switching fabrics and route servers, memberships,
private interconnects and remote peering, per-operator BGP community
schemes, and noisy colocation-database exports (PeeringDB /
DataCenterMap stand-ins).
"""

from repro.topology.entities import (
    Address,
    ASTier,
    AutonomousSystem,
    Facility,
    IXP,
    IXPPort,
    Organization,
    Relationship,
    Topology,
)
from repro.topology.communities import (
    CommunityScheme,
    CommunityTag,
    RouteServerScheme,
    TagKind,
)
from repro.topology.builder import WorldParams, build_topology
from repro.topology.sources import (
    ColocationRecord,
    IXPRecord,
    export_datacentermap,
    export_peeringdb,
)

__all__ = [
    "Address",
    "ASTier",
    "AutonomousSystem",
    "Facility",
    "IXP",
    "IXPPort",
    "Organization",
    "Relationship",
    "Topology",
    "CommunityScheme",
    "CommunityTag",
    "RouteServerScheme",
    "TagKind",
    "WorldParams",
    "build_topology",
    "ColocationRecord",
    "IXPRecord",
    "export_peeringdb",
    "export_datacentermap",
]
