"""World-city gazetteer.

A curated set of real metropolitan areas that host peering infrastructure,
with coordinates, IATA codes, common aliases, countries and continents.
The distribution deliberately mirrors the geography the paper reports
(Section 3.2, Figure 5; Table 1): Europe and North America dominate, with a
smaller tail in Asia/Pacific, South America and Africa.

The gazetteer is the ground truth behind the offline geocoder
(:mod:`repro.geo.geocoder`) and the topology builder
(:mod:`repro.topology.builder`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class City:
    """A metropolitan area hosting peering infrastructure.

    ``aliases`` holds the alternative identifiers operators use in their
    community documentation: short forms, IATA airport codes, local
    spellings.  The paper resolves these through geocoding + clustering.
    """

    name: str
    country: str
    continent: str
    lat: float
    lon: float
    iata: str
    aliases: tuple[str, ...] = field(default=())

    def all_identifiers(self) -> tuple[str, ...]:
        """Every identifier that may denote this city in operator docs."""
        return (self.name, self.iata) + self.aliases


#: Continent codes used throughout the project.
CONTINENTS = ("EU", "NA", "AP", "SA", "AF")

WORLD_CITIES: tuple[City, ...] = (
    # --- Europe (the paper: 66% of location communities) ---
    City("Amsterdam", "NL", "EU", 52.3702, 4.8952, "AMS", ("AMS-NL", "Adam")),
    City("London", "GB", "EU", 51.5074, -0.1278, "LHR", ("LON", "LDN")),
    City("Frankfurt", "DE", "EU", 50.1109, 8.6821, "FRA", ("FFM", "Frankfurt am Main")),
    City("Paris", "FR", "EU", 48.8566, 2.3522, "CDG", ("PAR",)),
    City("Stockholm", "SE", "EU", 59.3293, 18.0686, "ARN", ("STO",)),
    City("Milan", "IT", "EU", 45.4642, 9.1900, "MXP", ("MIL", "Milano")),
    City("Madrid", "ES", "EU", 40.4168, -3.7038, "MAD", ()),
    City("Vienna", "AT", "EU", 48.2082, 16.3738, "VIE", ("Wien",)),
    City("Zurich", "CH", "EU", 47.3769, 8.5417, "ZRH", ("ZUR", "Zuerich")),
    City("Warsaw", "PL", "EU", 52.2297, 21.0122, "WAW", ("Warszawa",)),
    City("Prague", "CZ", "EU", 50.0755, 14.4378, "PRG", ("Praha",)),
    City("Copenhagen", "DK", "EU", 55.6761, 12.5683, "CPH", ("Kobenhavn",)),
    City("Dublin", "IE", "EU", 53.3498, -6.2603, "DUB", ()),
    City("Brussels", "BE", "EU", 50.8503, 4.3517, "BRU", ("BXL",)),
    City("Oslo", "NO", "EU", 59.9139, 10.7522, "OSL", ()),
    City("Helsinki", "FI", "EU", 60.1699, 24.9384, "HEL", ()),
    City("Lisbon", "PT", "EU", 38.7223, -9.1393, "LIS", ("Lisboa",)),
    City("Bucharest", "RO", "EU", 44.4268, 26.1025, "OTP", ("Bucuresti",)),
    City("Kyiv", "UA", "EU", 50.4501, 30.5234, "KBP", ("Kiev",)),
    City("Moscow", "RU", "EU", 55.7558, 37.6173, "DME", ("MOW", "MSK")),
    City("Manchester", "GB", "EU", 53.4808, -2.2426, "MAN", ()),
    City("Marseille", "FR", "EU", 43.2965, 5.3698, "MRS", ()),
    City("Munich", "DE", "EU", 48.1351, 11.5820, "MUC", ("Muenchen",)),
    City("Hamburg", "DE", "EU", 53.5511, 9.9937, "HAM", ()),
    City("Dusseldorf", "DE", "EU", 51.2277, 6.7735, "DUS", ("Duesseldorf",)),
    City("Rome", "IT", "EU", 41.9028, 12.4964, "FCO", ("Roma",)),
    City("Athens", "GR", "EU", 37.9838, 23.7275, "ATH", ()),
    City("Budapest", "HU", "EU", 47.4979, 19.0402, "BUD", ()),
    City("Sofia", "BG", "EU", 42.6977, 23.3219, "SOF", ()),
    City("Istanbul", "TR", "EU", 41.0082, 28.9784, "IST", ()),
    # --- North America (24.5%) ---
    City("New York", "US", "NA", 40.7128, -74.0060, "JFK", ("NYC", "New York City")),
    City("Ashburn", "US", "NA", 39.0438, -77.4874, "IAD", ("Washington DC", "WDC")),
    City("Chicago", "US", "NA", 41.8781, -87.6298, "ORD", ("CHI",)),
    City("Dallas", "US", "NA", 32.7767, -96.7970, "DFW", ("DAL",)),
    City("Los Angeles", "US", "NA", 34.0522, -118.2437, "LAX", ("LA",)),
    City("San Jose", "US", "NA", 37.3382, -121.8863, "SJC", ("Silicon Valley", "Palo Alto")),
    City("Seattle", "US", "NA", 47.6062, -122.3321, "SEA", ()),
    City("Miami", "US", "NA", 25.7617, -80.1918, "MIA", ()),
    City("Atlanta", "US", "NA", 33.7490, -84.3880, "ATL", ()),
    City("Toronto", "CA", "NA", 43.6532, -79.3832, "YYZ", ("TOR",)),
    City("Montreal", "CA", "NA", 45.5017, -73.5673, "YUL", ()),
    City("Denver", "US", "NA", 39.7392, -104.9903, "DEN", ()),
    City("Phoenix", "US", "NA", 33.4484, -112.0740, "PHX", ()),
    City("Boston", "US", "NA", 42.3601, -71.0589, "BOS", ()),
    # --- Asia / Pacific ---
    City("Tokyo", "JP", "AP", 35.6762, 139.6503, "NRT", ("TYO",)),
    City("Singapore", "SG", "AP", 1.3521, 103.8198, "SIN", ("SGP",)),
    City("Hong Kong", "HK", "AP", 22.3193, 114.1694, "HKG", ("HK",)),
    City("Sydney", "AU", "AP", -33.8688, 151.2093, "SYD", ()),
    City("Mumbai", "IN", "AP", 19.0760, 72.8777, "BOM", ("Bombay",)),
    City("Seoul", "KR", "AP", 37.5665, 126.9780, "ICN", ()),
    City("Osaka", "JP", "AP", 34.6937, 135.5023, "KIX", ()),
    City("Auckland", "NZ", "AP", -36.8485, 174.7633, "AKL", ()),
    # --- South America ---
    City("Sao Paulo", "BR", "SA", -23.5505, -46.6333, "GRU", ("SP", "Sampa")),
    City("Buenos Aires", "AR", "SA", -34.6037, -58.3816, "EZE", ("BA",)),
    City("Santiago", "CL", "SA", -33.4489, -70.6693, "SCL", ()),
    City("Bogota", "CO", "SA", 4.7110, -74.0721, "BOG", ()),
    # --- Africa ---
    City("Johannesburg", "ZA", "AF", -26.2041, 28.0473, "JNB", ("JHB", "Joburg")),
    City("Cape Town", "ZA", "AF", -33.9249, 18.4241, "CPT", ()),
    City("Nairobi", "KE", "AF", -1.2921, 36.8219, "NBO", ()),
    City("Lagos", "NG", "AF", 6.5244, 3.3792, "LOS", ()),
)

_BY_NAME: dict[str, City] = {}
for _city in WORLD_CITIES:
    for _ident in _city.all_identifiers():
        _BY_NAME.setdefault(_ident.lower(), _city)


def city_by_name(identifier: str) -> City | None:
    """Resolve a city by canonical name, IATA code, or alias.

    Lookup is case-insensitive.  Returns ``None`` when the identifier is
    unknown — callers must decide whether that is an error.
    """
    return _BY_NAME.get(identifier.strip().lower())


def cities_by_continent(continent: str) -> tuple[City, ...]:
    """All gazetteer cities on the given continent code (e.g. ``"EU"``)."""
    if continent not in CONTINENTS:
        raise ValueError(f"unknown continent code {continent!r}")
    return tuple(c for c in WORLD_CITIES if c.continent == continent)
