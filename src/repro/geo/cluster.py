"""Location-identifier clustering (Section 3.2).

"To determine if the different location identifiers refer to the same
location we query the Google Maps Geocoding API to obtain the coordinates
for each identifier, and we group together identifiers that are within
10 km from each other."

We implement this as single-linkage agglomerative clustering with a 10 km
linkage radius — the natural reading of "group together identifiers that
are within 10 km of each other" — via a union-find structure.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.geo.distance import haversine_km
from repro.geo.geocoder import Geocoder

#: The paper's clustering radius.
CLUSTER_RADIUS_KM = 10.0


class _UnionFind:
    """Minimal union-find over integer indices (path halving + rank)."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


def cluster_points(
    points: Mapping[str, tuple[float, float]],
    radius_km: float = CLUSTER_RADIUS_KM,
) -> list[set[str]]:
    """Group identifiers whose coordinates are within ``radius_km``.

    Single linkage: if A–B and B–C are each within the radius, A, B and C
    form one cluster even if A–C exceeds it.  Returns clusters sorted by
    their smallest member for determinism.
    """
    if radius_km < 0:
        raise ValueError("radius_km must be non-negative")
    names = sorted(points)
    uf = _UnionFind(len(names))
    for i, a in enumerate(names):
        lat_a, lon_a = points[a]
        for j in range(i + 1, len(names)):
            lat_b, lon_b = points[names[j]]
            # Cheap latitude prefilter: 1 deg latitude ~ 111 km.
            if abs(lat_a - lat_b) * 111.0 > radius_km:
                continue
            if haversine_km(lat_a, lon_a, lat_b, lon_b) <= radius_km:
                uf.union(i, j)
    clusters: dict[int, set[str]] = {}
    for i, name in enumerate(names):
        clusters.setdefault(uf.find(i), set()).add(name)
    return sorted(clusters.values(), key=lambda c: min(c))


def cluster_identifiers(
    identifiers: Iterable[str],
    geocoder: Geocoder | None = None,
    radius_km: float = CLUSTER_RADIUS_KM,
) -> tuple[list[set[str]], set[str]]:
    """Geocode identifiers and cluster the resolvable ones.

    Returns ``(clusters, unresolved)`` where ``unresolved`` contains the
    identifiers the geocoder could not resolve (these are dropped from the
    dictionary in the paper's pipeline rather than guessed).
    """
    geocoder = geocoder or Geocoder()
    points: dict[str, tuple[float, float]] = {}
    unresolved: set[str] = set()
    for ident in identifiers:
        result = geocoder.geocode(ident)
        if result is None:
            unresolved.add(ident)
        else:
            points[ident] = (result.lat, result.lon)
    return cluster_points(points, radius_km=radius_km), unresolved
