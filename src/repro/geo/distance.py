"""Great-circle distance computations.

The paper measures the remote impact of outages in kilometres from the
outage epicenter (Figure 9c) and clusters geocoded location identifiers
within 10 km of each other (Section 3.2).  Both need a geodesic distance;
the standard haversine formula is accurate to ~0.5 % which is far below the
10 km clustering radius and the 100 km-scale effects studied.
"""

from __future__ import annotations

import math

#: Mean Earth radius in kilometres (IUGG value).
EARTH_RADIUS_KM = 6371.0088


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Return the great-circle distance in km between two WGS84 points.

    Coordinates are in decimal degrees.  The result is symmetric,
    non-negative, and zero only for identical points (up to floating
    point rounding).

    >>> round(haversine_km(52.3702, 4.8952, 50.1109, 8.6821))  # AMS->FRA
    360
    """
    if not (-90.0 <= lat1 <= 90.0 and -90.0 <= lat2 <= 90.0):
        raise ValueError("latitude out of range [-90, 90]")
    if not (-180.0 <= lon1 <= 180.0 and -180.0 <= lon2 <= 180.0):
        raise ValueError("longitude out of range [-180, 180]")

    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)

    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    # Clamp to guard against rounding pushing the argument out of [0, 1].
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def midpoint(lat1: float, lon1: float, lat2: float, lon2: float) -> tuple[float, float]:
    """Return the geographic midpoint of two points (decimal degrees)."""
    phi1, lam1 = math.radians(lat1), math.radians(lon1)
    phi2, lam2 = math.radians(lat2), math.radians(lon2)
    bx = math.cos(phi2) * math.cos(lam2 - lam1)
    by = math.cos(phi2) * math.sin(lam2 - lam1)
    phi_m = math.atan2(
        math.sin(phi1) + math.sin(phi2),
        math.sqrt((math.cos(phi1) + bx) ** 2 + by**2),
    )
    lam_m = lam1 + math.atan2(by, math.cos(phi1) + bx)
    # Normalise longitude into [-180, 180] (the sum can leave the range).
    lon_m = math.degrees(lam_m)
    lon_m = (lon_m + 180.0) % 360.0 - 180.0
    return math.degrees(phi_m), lon_m


def fiber_rtt_ms(distance_km: float) -> float:
    """Estimate the round-trip time in milliseconds over a fiber path.

    Light in fiber travels at roughly 2/3 c ≈ 200 km/ms one way; real
    paths are not geodesics so a conventional 1.5x path-stretch factor is
    applied.  Used by the traceroute RTT model (Figure 10c).
    """
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    one_way_ms = (distance_km * 1.5) / 200.0
    return 2.0 * one_way_ms
