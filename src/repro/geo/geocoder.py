"""Offline geocoder emulating the Google Maps Geocoding API of Section 3.2.

The paper resolves heterogeneous location identifiers found in community
documentation ("New York City", "NYC", "JFK") by querying a geocoding API
and grouping identifiers whose coordinates fall within 10 km of each other.

This offline stand-in reproduces the *relevant behaviour* of a real
geocoder:

* distinct identifiers of the same city geocode to nearby but *not
  identical* coordinates (the airport is not the city hall), so the 10 km
  clustering step has real work to do;
* unknown identifiers return no result;
* results carry a coarse "location type" the way real geocoders do.

Offsets are deterministic per identifier so experiments are reproducible.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.geo.cities import City, city_by_name


@dataclass(frozen=True)
class GeocodeResult:
    """A single geocoder answer."""

    query: str
    lat: float
    lon: float
    canonical_name: str
    country: str
    continent: str
    location_type: str  # "locality" | "airport"


def _stable_unit_interval(key: str) -> float:
    """Map a string to a deterministic float in [0, 1)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class Geocoder:
    """Deterministic offline geocoder backed by the gazetteer.

    ``max_offset_km`` bounds how far an alias may geocode from the city's
    canonical point.  The default of 6 km keeps every alias of one city
    within the paper's 10 km clustering radius while keeping distinct
    cities (tens of km apart at minimum) in separate clusters.
    """

    def __init__(self, max_offset_km: float = 6.0) -> None:
        if max_offset_km < 0:
            raise ValueError("max_offset_km must be non-negative")
        self.max_offset_km = max_offset_km
        self._cache: dict[str, GeocodeResult | None] = {}
        self.query_count = 0

    def geocode(self, identifier: str) -> GeocodeResult | None:
        """Resolve an identifier to coordinates, or ``None`` if unknown."""
        key = identifier.strip().lower()
        if key in self._cache:
            return self._cache[key]
        self.query_count += 1
        city = city_by_name(identifier)
        result = None if city is None else self._build_result(identifier, city)
        self._cache[key] = result
        return result

    def _build_result(self, identifier: str, city: City) -> GeocodeResult:
        norm = identifier.strip().lower()
        is_canonical = norm == city.name.lower()
        is_airport = norm == city.iata.lower()
        if is_canonical:
            lat, lon = city.lat, city.lon
        else:
            # Deterministic offset: direction and magnitude derived from
            # the identifier so the same alias always lands on the same
            # point, like a real geocoder returning a fixed POI.
            angle = 2.0 * math.pi * _stable_unit_interval("angle:" + norm)
            radius = self.max_offset_km * _stable_unit_interval("radius:" + norm)
            dlat = (radius / 111.32) * math.cos(angle)
            # Longitude degrees shrink with latitude.
            lon_scale = 111.32 * max(0.1, math.cos(math.radians(city.lat)))
            dlon = (radius / lon_scale) * math.sin(angle)
            lat, lon = city.lat + dlat, city.lon + dlon
        return GeocodeResult(
            query=identifier,
            lat=lat,
            lon=lon,
            canonical_name=city.name,
            country=city.country,
            continent=city.continent,
            location_type="airport" if is_airport else "locality",
        )
