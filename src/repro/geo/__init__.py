"""Geography substrate.

Provides the world-city gazetteer, great-circle distances, an offline
geocoder that stands in for the Google Maps Geocoding API used in the paper
(Section 3.2), and the 10 km clustering used to unify location identifiers
("New York City", "NYC", "JFK") that refer to the same place.
"""

from repro.geo.cities import City, WORLD_CITIES, city_by_name, cities_by_continent
from repro.geo.cluster import CLUSTER_RADIUS_KM, cluster_identifiers
from repro.geo.distance import EARTH_RADIUS_KM, haversine_km
from repro.geo.geocoder import GeocodeResult, Geocoder

__all__ = [
    "City",
    "WORLD_CITIES",
    "city_by_name",
    "cities_by_continent",
    "EARTH_RADIUS_KM",
    "haversine_km",
    "Geocoder",
    "GeocodeResult",
    "CLUSTER_RADIUS_KM",
    "cluster_identifiers",
]
