"""Checkpoint/resume across OS processes: the restart drill.

A long-running detector must survive a restart without losing its
baseline, correlation window or open records.  This example proves the
property the hard way:

1. *(subprocess A)* build the world, run the full replay uninterrupted
   (the baseline), then run a fresh detector over the first half only
   and write ``kepler-checkpoint.json`` — plus the deployment inputs
   (dictionary, colocation map, as2org) and the unprocessed remainder
   of the stream, exactly what an operator hands the replacement
   process;
2. *(subprocess B)* construct a detector from the shipped inputs,
   ``restore()`` the checkpoint, consume the remainder, write its
   final records — under the **multiprocess stage runtime**
   (``KeplerParams(process_workers=2)``) where the platform can fork,
   proving the checkpoint document is interchangeable between the
   in-process and queue-connected runtimes;
3. *(this process)* compare: the resumed run must match the
   uninterrupted one record for record.

Run:  PYTHONPATH=src python examples/checkpoint_resume.py
Exit status is non-zero on any mismatch (CI smoke-checks this).
"""

from __future__ import annotations

import json
import pathlib
import pickle
import subprocess
import sys
import tempfile

from repro.core.kepler import Kepler, KeplerParams
from repro.core.serde import record_to_json
from repro.routing.events import (
    FacilityFailure,
    FacilityRecovery,
    IXPFailure,
    IXPRecovery,
)
from repro.scenarios import World, build_world
from repro.topology.builder import WorldParams

SEED = 7
WORLD = WorldParams(
    seed=SEED,
    n_tier1=5,
    n_tier2=20,
    n_access=60,
    n_content=18,
    n_facilities=50,
    n_ixps=12,
)
END_TIME = 60_000.0


def replay(world: World):
    """RIB snapshot + a two-outage event mix."""
    fac_ids = sorted(
        f
        for f, tenants in world.topo.facility_tenants.items()
        if len(tenants) >= 8
    )
    ixp_ids = sorted(
        i for i, members in world.topo.ixp_members.items() if len(members) >= 8
    )
    events = [
        (10_000.0, FacilityFailure(fac_ids[0])),
        (14_000.0, FacilityRecovery(fac_ids[0])),
    ]
    if ixp_ids:
        events += [
            (20_000.0, IXPFailure(ixp_ids[0])),
            (22_000.0, IXPRecovery(ixp_ids[0])),
        ]
    snapshot = world.rib_snapshot(0.0)
    elements = world.run_events(events)
    return snapshot, elements


def records_json(kepler: Kepler) -> list[dict]:
    return [record_to_json(r) for r in kepler.records]


def first_half(workdir: pathlib.Path) -> None:
    world = build_world(seed=SEED, world_params=WORLD)
    snapshot, elements = replay(world)
    cut = len(elements) // 2

    baseline = world.make_kepler(params=KeplerParams())
    baseline.prime(snapshot)
    baseline.process(elements)
    baseline.finalize(end_time=END_TIME)
    (workdir / "baseline-records.json").write_text(
        json.dumps(records_json(baseline))
    )

    kepler = world.make_kepler(params=KeplerParams())
    kepler.prime(snapshot)
    kepler.process(elements[:cut])
    (workdir / "kepler-checkpoint.json").write_text(
        json.dumps(kepler.snapshot())
    )
    # Everything the replacement process needs besides the checkpoint:
    # the deployment inputs and the not-yet-consumed stream tail.
    with (workdir / "handoff.pickle").open("wb") as fh:
        pickle.dump(
            {
                "dictionary": world.dictionary,
                "colo": world.colo,
                "as2org": world.as2org,
                "remainder": elements[cut:],
            },
            fh,
        )
    print(
        f"[first-half] {cut}/{len(elements)} elements processed,"
        f" checkpoint + handoff written to {workdir}"
    )


def second_half(workdir: pathlib.Path) -> None:
    from repro.pipeline import fork_available

    with (workdir / "handoff.pickle").open("rb") as fh:
        handoff = pickle.load(fh)
    # Resume under the multiprocess runtime where possible: a linear
    # checkpoint restores into the queue-connected runtime (and back),
    # since both compose the same versioned document.
    process_workers = 2 if fork_available() else 0
    kepler = Kepler(
        dictionary=handoff["dictionary"],
        colo=handoff["colo"],
        as2org=handoff["as2org"],
        params=KeplerParams(process_workers=process_workers),
    )
    kepler.restore(
        json.loads((workdir / "kepler-checkpoint.json").read_text())
    )
    kepler.process(handoff["remainder"])
    kepler.finalize(end_time=END_TIME)
    (workdir / "resumed-records.json").write_text(
        json.dumps(records_json(kepler))
    )
    print(
        f"[second-half] resumed from checkpoint"
        f" (process_workers={process_workers}), processed"
        f" {len(handoff['remainder'])} remaining elements,"
        f" {len(kepler.records)} records"
    )
    kepler.close()


def main() -> int:
    if len(sys.argv) > 1:
        phase, workdir = sys.argv[1], pathlib.Path(sys.argv[2])
        (first_half if phase == "first-half" else second_half)(workdir)
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)
        for phase in ("first-half", "second-half"):
            print(f"Spawning {phase} process ...")
            subprocess.run(
                [sys.executable, __file__, phase, str(workdir)],
                check=True,
            )
        baseline = json.loads((workdir / "baseline-records.json").read_text())
        resumed = json.loads((workdir / "resumed-records.json").read_text())

    if resumed != baseline:
        print("MISMATCH: resumed records differ from uninterrupted run")
        return 1
    print(
        f"OK: restart-resumed run reproduced all {len(baseline)}"
        " records byte-identically"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
