"""Quickstart: detect a single facility outage end to end.

Builds the synthetic world, primes Kepler with a RIB snapshot, injects a
one-hour outage at the Telehouse North building (a LINX fabric host),
and prints what Kepler detects, localises and measures.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.docmine.dictionary import PoPKind
from repro.routing.events import FacilityFailure, FacilityRecovery
from repro.scenarios import build_world


def main() -> None:
    print("Building world (topology, colocation map, dictionary) ...")
    world = build_world(seed=1)
    print(
        f"  {len(world.topo.ases)} ASes, {len(world.topo.facilities)}"
        f" facilities, {len(world.topo.ixps)} IXPs;"
        f" dictionary: {len(world.dictionary)} communities"
    )

    kepler = world.make_kepler()
    primed = kepler.prime(world.rib_snapshot(0.0))
    print(f"  baseline primed from {primed} tagged RIB paths")

    outage_start, outage_end = 10_000.0, 13_600.0
    print(
        "\nInjecting a 60-minute outage at Telehouse North"
        f" (t={outage_start:.0f}s) ..."
    )
    elements = world.run_events(
        [
            (outage_start, FacilityFailure("th-north")),
            (outage_end, FacilityRecovery("th-north")),
        ]
    )
    print(f"  {len(elements)} BGP stream elements generated")

    kepler.process(elements)
    records = kepler.finalize(end_time=40_000.0)

    print(f"\nKepler detected {len(records)} infrastructure outage(s):")
    for record in records:
        if record.located_pop.kind is PoPKind.FACILITY:
            truth = world.truth_facility_ids(record.located_pop.pop_id)
        else:
            truth = world.truth_ixp_ids(record.located_pop.pop_id)
        names = {
            world.topo.facilities[t].name
            for t in truth
            if t in world.topo.facilities
        } or truth
        print(f"  {record.describe()}")
        print(f"    ground-truth identity: {sorted(names)}")
    counts = kepler.signal_counts()
    print(
        "\nSignal classification counts: "
        + ", ".join(f"{k.value}={v}" for k, v in counts.items())
    )
    print("\nPipeline stage metrics:")
    print(kepler.metrics.describe())


if __name__ == "__main__":
    main()
