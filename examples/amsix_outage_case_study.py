"""The AMS-IX 2015-05-13 outage case study (Sections 6.2-6.4).

Replays the switching-loop outage and reproduces the paper's analyses:

* detection at three community granularities (Figure 8c);
* BGP vs traceroute path restoration (Figures 10a/10b);
* RTT impact on rerouted vs unchanged paths (Figure 10c);
* the remote traffic dip at a Frankfurt IXP 360 km away (Figure 10d).

Run:  python examples/amsix_outage_case_study.py
"""

from __future__ import annotations

from repro.analysis.rtt import rtt_comparison
from repro.outages.case_studies import (
    AMSIX_OUTAGE_DURATION_S,
    AMSIX_OUTAGE_START,
    amsix_outage_scenario,
)
from repro.scenarios import build_world
from repro.traceroute import (
    AddressPlan,
    HopMapper,
    MeasurementPlatform,
    TracerouteSimulator,
)
from repro.traffic import IXPTrafficObserver, TrafficMatrix


def main() -> None:
    world = build_world(seed=1)
    scenario = amsix_outage_scenario()
    t0 = AMSIX_OUTAGE_START
    t1 = t0 + AMSIX_OUTAGE_DURATION_S

    kepler = world.make_kepler()
    kepler.prime(world.rib_snapshot(t0 - 3 * 3600.0))
    kepler.process(world.run_events(scenario.sorted_events()))
    records = kepler.finalize(end_time=t1 + 6 * 3600.0)

    print("=== Detection (Figure 8c) ===")
    for record in records:
        minutes = (record.duration_s or 0.0) / 60.0
        print(
            f"  {record.located_pop} via '{record.method}':"
            f" detected duration {minutes:.0f} min"
            f" (true outage {AMSIX_OUTAGE_DURATION_S / 60:.0f} min),"
            f" {len(record.affected_ases)} member ASes affected"
        )

    print("\n=== Data plane (Figures 10b/10c) ===")
    plan = AddressPlan(world.topo)
    sim = TracerouteSimulator(world.engine, plan, seed=1)
    mapper = HopMapper(
        plan,
        ixp_truth_to_map={
            i: m for i in world.topo.ixps if (m := world.map_ixp_id(i))
        },
        fac_truth_to_map={
            f: m for f in world.topo.facilities if (m := world.map_facility_id(f))
        },
    )
    platform = MeasurementPlatform(simulator=sim, daily_credits=10**9)
    ams_map_id = world.map_ixp_id("ams-ix")
    members = sorted(world.topo.ixp_members["ams-ix"])
    probes = platform.probes_in(set(members)) or platform.probes[:20]
    targets = [m for m in members if world.topo.ases[m].originates][:15]

    phases = {
        "before": t0 - 1200.0,
        "during": t0 + AMSIX_OUTAGE_DURATION_S / 2.0,
        "after": t1 + 1200.0,
    }
    for phase, when in phases.items():
        traces = [
            sim.trace(p.asn, dst, when)
            for p in probes[:12]
            for dst in targets
            if p.asn != dst
        ]
        crossing = sum(
            1
            for tr in traces
            if tr.reached and mapper.trace_crosses_pop(tr, "ixp", ams_map_id)
        )
        comparison = rtt_comparison(phase, traces, mapper, "ixp", ams_map_id)
        via = comparison.median_via()
        off = comparison.median_off()
        print(
            f"  {phase:>6}: {crossing}/{len(traces)} traces cross AMS-IX;"
            f" median RTT via={via and round(via, 1)} ms,"
            f" off={off and round(off, 1)} ms"
        )

    print("\n=== Remote traffic at DE-CIX Frankfurt (Figure 10d) ===")
    matrix = TrafficMatrix(world.topo, seed=1)
    observer = IXPTrafficObserver(world.engine, matrix, "de-cix")
    baseline = observer.sample(t0 - 1800.0).total_gbps
    during = observer.sample(t0 + 300.0).total_gbps
    after = observer.sample(t1 + 3600.0).total_gbps
    print(f"  asymmetric member-pair fraction: {observer.asymmetric_pair_fraction():.1%}")
    print(f"  before outage: {baseline:7.1f} Gbps")
    print(f"  during outage: {during:7.1f} Gbps ({during / baseline - 1:+.1%})")
    print(f"  after outage : {after:7.1f} Gbps")


if __name__ == "__main__":
    main()
