"""The July 2016 London double facility outage (Figures 9a/9b/9c).

Two independent building outages on consecutive days — Telecity Harbour
Exchange 8&9 (time A) and Telehouse North (time C) — with an unrelated
Tier-1 event in between (time B) that Kepler must classify as AS-level
rather than a facility outage.  Also reproduces the remote-impact
analysis: the affected far-end interfaces are geolocated and their
distance from London measured (only ~44 % were local in the paper).

Run:  python examples/london_dual_outage.py
"""

from __future__ import annotations

from repro.analysis.remote_impact import (
    affected_far_interfaces,
    remote_impact_analysis,
)
from repro.core.events import SignalType
from repro.docmine.dictionary import PoPKind
from repro.outages.case_studies import (
    LONDON_A_START,
    LONDON_B_START,
    LONDON_C_START,
    london_dual_outage_scenario,
)
from repro.scenarios import build_validator, build_world
from repro.traceroute import AddressPlan


def main() -> None:
    world = build_world(seed=1)
    scenario = london_dual_outage_scenario(world.topo)

    print("Building traceroute baseline for data-plane validation ...")
    validator = build_validator(
        world, baseline_start=LONDON_A_START, seed=1, targets_stride=10
    )
    kepler = world.make_kepler(validator=validator)
    kepler.prime(world.rib_snapshot(LONDON_A_START - 6 * 3600.0))
    kepler.process(world.run_events(scenario.sorted_events()))
    records = kepler.finalize(end_time=LONDON_C_START + 12 * 3600.0)

    print("=== Timeline (Figure 9a) ===")
    for label, when in (("A", LONDON_A_START), ("B", LONDON_B_START), ("C", LONDON_C_START)):
        print(f"  time {label}: t={when:.0f}")

    print("\n=== Detected outages (Figure 9b: correct epicenters) ===")
    for record in sorted(records, key=lambda r: r.start):
        truth = (
            world.truth_facility_ids(record.located_pop.pop_id)
            if record.located_pop.kind is PoPKind.FACILITY
            else world.truth_ixp_ids(record.located_pop.pop_id)
        )
        print(f"  {record.describe()}  ground truth: {sorted(truth)}")

    pop_signals = [
        c for c in kepler.signal_log if c.signal_type is SignalType.POP
    ]
    as_signals = [c for c in kepler.signal_log if c.signal_type is SignalType.AS]
    print(
        f"\n  PoP-level signals: {len(pop_signals)},"
        f" AS-level signals (incl. the time-B trap): {len(as_signals)}"
    )

    print("\n=== Remote impact (Figure 9c) ===")
    plan = AddressPlan(world.topo)
    affected_links = {
        (n, f)
        for record in records
        for n, f in record.affected_links
        if n is not None and f is not None
    }
    interfaces = affected_far_interfaces(
        world.topo, plan, affected_links, via_ixp="linx"
    )
    impact = remote_impact_analysis(interfaces, "London", plan, world.topo)
    print(f"  affected far-end interfaces: {len(impact.distances_km)}")
    print(f"  local to London (<=50 km): {impact.local_fraction:.1%}")
    print(f"  in another country:        {impact.other_country_fraction:.1%}")
    print(f"  outside Europe:            {impact.outside_continent_fraction:.1%}")
    print("  distance histogram (500 km bins):")
    for start, count in impact.histogram(500.0)[:8]:
        print(f"    {start:6.0f} km+ : {'#' * min(count, 60)} ({count})")


if __name__ == "__main__":
    main()
