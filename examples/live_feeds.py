"""Multi-feed ingest with a mid-stream resume: the live-collector drill.

A production detector watches many collectors at once.  This example
drives the sharded ingest tier (``KeplerParams(ingest_feeds=N)``) the
way an operator would:

1. build the world and replay an outage scenario, keeping the
   per-collector feeds separate (what BGPStream would hand us per
   collector, before any global merge);
2. run the first half of the stream through
   ``Kepler.process_feeds(...)`` — each feed consumed by its own feed
   worker (forked where the platform allows), the watermark merge
   releasing the unified sorted stream — and snapshot;
3. restore the snapshot into a detector with a *different* ingest
   layout (the driver ingest path), finish the stream, and compare
   against an uninterrupted single-stream run: records must match
   byte for byte.

Run:  PYTHONPATH=src python examples/live_feeds.py
Exit status is non-zero on any mismatch (CI smoke-checks this).
"""

from __future__ import annotations

import json

from repro.core.kepler import Kepler, KeplerParams
from repro.core.serde import record_to_json
from repro.ingest import split_by_collector
from repro.routing.events import (
    FacilityFailure,
    FacilityRecovery,
    IXPFailure,
    IXPRecovery,
)
from repro.scenarios import World, build_world
from repro.topology.builder import WorldParams

SEED = 7
WORLD = WorldParams(
    seed=SEED,
    n_tier1=5,
    n_tier2=20,
    n_access=60,
    n_content=18,
    n_facilities=50,
    n_ixps=12,
)
END_TIME = 60_000.0
FEEDS = 3


def replay(world: World):
    fac_ids = sorted(
        f
        for f, tenants in world.topo.facility_tenants.items()
        if len(tenants) >= 8
    )
    ixp_ids = sorted(
        i for i, members in world.topo.ixp_members.items() if len(members) >= 8
    )
    events = [
        (10_000.0, FacilityFailure(fac_ids[0])),
        (14_000.0, FacilityRecovery(fac_ids[0])),
    ]
    if ixp_ids:
        events += [
            (20_000.0, IXPFailure(ixp_ids[0])),
            (22_000.0, IXPRecovery(ixp_ids[0])),
        ]
    return world.rib_snapshot(0.0), world.run_events(events)


def collector_sources(elements) -> dict[str, list]:
    """Per-collector feeds: each source pinned to its collector's feed."""
    return split_by_collector(elements)


def records_json(kepler: Kepler) -> list[dict]:
    return [record_to_json(r) for r in kepler.records]


def main() -> int:
    print("Building world (topology, colocation map, dictionary) ...")
    world = build_world(seed=SEED, world_params=WORLD)
    snapshot, elements = replay(world)
    cut = len(elements) // 2
    collectors = sorted(split_by_collector(elements))
    print(
        f"  {len(elements)} stream elements across"
        f" {len(collectors)} collectors: {', '.join(collectors)}"
    )

    # Reference: one uninterrupted run over the pre-merged stream.
    reference = world.make_kepler(params=KeplerParams())
    reference.prime(snapshot)
    reference.process(elements)
    reference.finalize(end_time=END_TIME)
    expected = records_json(reference)

    # Phase 1: consume the first half as per-collector feeds.
    print(f"\nPhase 1: ingest tier with {FEEDS} feed workers ...")
    live = world.make_kepler(params=KeplerParams(ingest_feeds=FEEDS))
    live.prime(snapshot)
    live.process_feeds(collector_sources(elements[:cut]))
    checkpoint = json.dumps(live.snapshot())
    merge = live.stages.tier.merge
    print(
        f"  {cut} elements merged from {len(collectors)} collectors"
        f" ({merge.released} released, {merge.late_elements} late,"
        f" peak reorder window {merge.peak_buffered});"
        f" checkpoint: {len(checkpoint)} bytes"
    )
    live.close()

    # Phase 2: restore into a *different* ingest layout and finish.
    print("Phase 2: resume under the driver ingest path ...")
    resumed = world.make_kepler(params=KeplerParams())
    resumed.restore(json.loads(checkpoint))
    resumed.process(elements[cut:])
    resumed.finalize(end_time=END_TIME)
    got = records_json(resumed)
    resumed.close()

    if got != expected:
        print("MISMATCH: multi-feed resumed run diverged from reference")
        return 1
    print(
        f"\nOK: multi-feed ingest + cross-layout resume reproduced all"
        f" {len(expected)} records byte-identically:"
    )
    for record in resumed.records:
        print(f"  {record.describe()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
