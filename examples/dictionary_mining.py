"""Community-dictionary mining walkthrough (Section 3.2).

Shows every stage of the pipeline on the synthetic documentation corpus:
scraping, regex extraction, voice filtering, NER, geocode clustering —
then scores the result against the ground-truth schemes the way the
paper validated against 25 manually parsed operators.

Run:  python examples/dictionary_mining.py
"""

from __future__ import annotations

from repro.analysis.coverage import dictionary_geo_spread
from repro.bgp.communities import Community
from repro.core.colocation import build_colocation_map
from repro.docmine import (
    WebScraper,
    build_dictionary,
    classify_voice,
    extract_mentions,
    generate_corpus,
)
from repro.docmine.dictionary import PoPKind
from repro.docmine.voice import Voice
from repro.topology.builder import WorldParams, build_topology
from repro.topology.communities import TagKind
from repro.topology.sources import export_datacentermap, export_peeringdb


def main() -> None:
    topo = build_topology(WorldParams(seed=1))
    fac_pdb, ixp_pdb = export_peeringdb(topo, seed=1)
    fac_dcm, ixp_dcm = export_datacentermap(topo, seed=1)
    colo = build_colocation_map(fac_pdb + fac_dcm, ixp_pdb + ixp_dcm)

    pages = generate_corpus(topo, seed=1)
    scraper = WebScraper(pages, seed=1)
    fetched = scraper.crawl()
    print(f"Scraped {len(fetched)} documentation pages "
          f"({scraper.failed_fetches} fetch failures)")

    sample = fetched[0]
    print(f"\nSample page (AS{sample.asn}, {sample.source}):")
    for line in sample.text.splitlines()[:6]:
        print(f"  | {line}")

    mentions = [
        m for page in fetched for m in extract_mentions(page.text, page.asn)
    ]
    passive = sum(1 for m in mentions if classify_voice(m.line) is Voice.PASSIVE)
    print(f"\nRegex extraction: {len(mentions)} community mentions")
    print(f"Voice filter: {passive} passive (ingress), "
          f"{len(mentions) - passive} active/unknown (dropped)")

    rs_records = {}
    for map_id, mixp in colo.ixps.items():
        for hint in mixp.ixp_id_hints:
            rs_records[topo.ixps[hint].rs_asn] = map_id
    dictionary = build_dictionary(fetched, colo, rs_records=rs_records)
    by_kind = {k.value: v for k, v in dictionary.size_by_kind().items()}
    print(f"\nDictionary: {len(dictionary)} communities from "
          f"{len(dictionary.covered_asns())} ASes; by kind: {by_kind}")

    # Score against ground truth (the paper found no FP/FN on 25 ASes).
    correct = wrong = missing = 0
    for asn, rec in topo.ases.items():
        if rec.scheme is None:
            continue
        for value, tag in rec.scheme.ingress.items():
            entry = dictionary.entries.get(Community(asn, value))
            if entry is None:
                missing += 1
                continue
            ok = False
            if tag.kind is TagKind.CITY:
                ok = entry.pop.kind is PoPKind.CITY and entry.pop.pop_id == tag.target_id
            elif tag.kind is TagKind.FACILITY and entry.pop.kind is PoPKind.FACILITY:
                ok = tag.target_id in colo.facilities[entry.pop.pop_id].fac_id_hints
            elif tag.kind is TagKind.IXP and entry.pop.kind is PoPKind.IXP:
                ok = tag.target_id in colo.ixps[entry.pop.pop_id].ixp_id_hints
            correct += ok
            wrong += not ok
    total = correct + wrong
    print(f"\nValidation vs ground truth: precision {correct / total:.1%} "
          f"({correct}/{total}); {missing} entries missing "
          f"(undocumented or unparsed schemes)")

    print("\nGeographic spread of dictionary entries (Figure 5):")
    spread = dictionary_geo_spread(dictionary, colo)
    grand_total = sum(sum(v.values()) for v in spread.values())
    for cont in sorted(spread, key=lambda c: -sum(spread[c].values())):
        count = sum(spread[cont].values())
        print(f"  {cont}: {count / grand_total:5.1%}  {spread[cont]}")


if __name__ == "__main__":
    main()
