"""Live metrics from a running multiprocess detector.

Runs the full shard-process runtime behind the sharded ingest tier
(`KeplerParams(shard_processes=2, ingest_feeds=2)`), serves
``kepler.metrics_live()`` over HTTP from a daemon thread, and polls it
*while the stream is being processed* — no drain barrier, no effect on
the detector's output.

Endpoints (printed at startup):

- ``/metrics``       Prometheus text exposition
- ``/metrics.json``  the raw snapshot dict
- ``/trace``         Chrome trace-event JSON (open in Perfetto)

Run:  PYTHONPATH=src python examples/live_metrics.py
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from repro import telemetry
from repro.core.kepler import KeplerParams
from repro.ingest import split_by_collector
from repro.routing.events import FacilityFailure, FacilityRecovery
from repro.scenarios import build_world


def describe(snapshot: dict) -> str:
    stages = {s["name"]: s for s in snapshot.get("stages", [])}
    tagging = stages.get("tagging", {})
    live = snapshot.get("live", {})
    depths = snapshot.get("depths", {})
    feeds = snapshot.get("feeds", {})
    parts = [
        f"tagged={tagging.get('fed', 0):>6}",
        f"workers={live.get('workers_reporting', 0)}/{live.get('workers', 0)}",
        f"sync_rounds={live.get('sync_rounds', 0):>4}",
        f"queued={sum(depths.values()) if depths else 0:>3}",
    ]
    for name in sorted(feeds):
        parts.append(f"{name}={feeds[name].get('fed', 0)}")
    p95 = snapshot.get("hists", {}).get("stage_ns.tagging", {}).get("p95")
    if p95 is not None:
        parts.append(f"tagging_p95={p95 / 1000.0:.1f}us/elem")
    return "  ".join(parts)


def main() -> None:
    # A frame per exchange so even this short run produces live data;
    # leave the default (0.25 s) for long-running deployments.
    telemetry.set_live_interval(0.0)

    print("Building world ...")
    world = build_world(seed=1)
    elements = world.run_events(
        [
            (10_000.0, FacilityFailure("th-north")),
            (13_600.0, FacilityRecovery("th-north")),
        ]
    )
    print(f"  {len(elements)} BGP stream elements generated")

    kepler = world.make_kepler(
        params=KeplerParams(shard_processes=2, ingest_feeds=2)
    )
    kepler.prime(world.rib_snapshot(0.0))

    from repro.telemetry import MetricsEndpoint

    with MetricsEndpoint(kepler.metrics_live) as endpoint:
        print(f"Serving live metrics at {endpoint.url}/metrics\n")

        stop = threading.Event()

        def poll() -> None:
            while not stop.is_set():
                with urllib.request.urlopen(
                    endpoint.url + "/metrics.json", timeout=5
                ) as response:
                    snapshot = json.load(response)
                print("  live:", describe(snapshot))
                time.sleep(0.05)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        kepler.process_feeds(split_by_collector(elements))
        records = kepler.finalize(end_time=40_000.0)
        stop.set()
        poller.join(timeout=5)

        # One last scrape after the run drains: totals are final now.
        with urllib.request.urlopen(
            endpoint.url + "/metrics", timeout=5
        ) as response:
            text = response.read().decode()
        print("\nFinal Prometheus scrape (excerpt):")
        for line in text.splitlines():
            if line.startswith(("repro_stage_fed", "repro_hist_bin_close")):
                print("  " + line)

    kepler.close()
    print(f"\nDetected {len(records)} outage record(s):")
    for record in records:
        print(f"  {record.describe()}")


if __name__ == "__main__":
    main()
