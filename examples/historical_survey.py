"""Five-year historical outage survey (Figure 1, scaled down).

Generates a 2012-2016 outage history, runs Kepler over the replayed BGP
stream, and compares detected outages per semester against the publicly
reported subset — the paper's headline result that passive detection
finds ~4x more infrastructure outages than mailing lists report.

The default run is scaled to a fraction of the paper's 159 events to
finish in about a minute; pass ``--full`` for the full-size history.

Run:  python examples/historical_survey.py [--full]
"""

from __future__ import annotations

import sys

from repro.outages.history import HistoryParams, generate_history, semester_of
from repro.outages.reports import ReportingModel
from repro.scenarios import build_world


def main(full: bool = False) -> None:
    # A wider vantage set materially improves recall on small
    # facilities (see EXPERIMENTS.md, F1).
    world = build_world(seed=2, n_tier2_vantages=32)
    params = (
        HistoryParams(seed=2)
        if full
        else HistoryParams(
            seed=2,
            n_facility_outages=26,
            n_ixp_outages=14,
            n_sandy_outages=4,
            n_as_events_per_year=8,
            n_depeerings_per_year=5,
            n_partial_per_year=2,
        )
    )
    scenario = generate_history(world.topo, params)
    infra = scenario.infrastructure_truth()
    print(
        f"History: {len(infra)} infrastructure outages"
        f" ({sum(1 for t in infra if t.kind == 'facility')} facility,"
        f" {sum(1 for t in infra if t.kind == 'ixp')} IXP),"
        f" {len(scenario.truth) - len(infra)} background events"
    )

    reporting = ReportingModel(world.topo, seed=2)
    reported = reporting.reports_for(infra)
    print(f"Publicly reported: {len(reported)} ({len(reported) / len(infra):.0%})")

    print("\nReplaying BGP stream through Kepler ...")
    kepler = world.make_kepler()
    kepler.prime(world.rib_snapshot(scenario.start_time - 86400.0))
    kepler.process(world.run_events(scenario.sorted_events()))
    records = kepler.finalize(end_time=scenario.end_time + 86400.0)
    print(f"Kepler detected {len(records)} infrastructure outages")
    if reported:
        print(f"Detected / reported ratio: {len(records) / len(reported):.1f}x")

    print("\nPer-semester (detected | reported):")
    detected_bins: dict[str, int] = {}
    reported_bins: dict[str, int] = {}
    for record in records:
        detected_bins[semester_of(record.start)] = (
            detected_bins.get(semester_of(record.start), 0) + 1
        )
    for report in reported:
        key = semester_of(report.truth.start)
        reported_bins[key] = reported_bins.get(key, 0) + 1
    for key in sorted(set(detected_bins) | set(reported_bins)):
        d = detected_bins.get(key, 0)
        r = reported_bins.get(key, 0)
        print(f"  {key}: {'#' * d:<28} {d:3d} | {r:3d}")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
