"""Cross-process determinism of the multiprocess stage runtime.

The queue-connected runtime (`repro/pipeline/parallel.py`) must be a
pure execution detail: on the same stream, records, signal log and
reject list are identical to the in-process chain — on two scenario
worlds, with and without a data-plane validator, with the sharded
downstream driven from the driver process — and a checkpoint taken
mid-stream through the drain-barrier protocol restores into either
runtime and finishes the stream byte-identically.
"""

from __future__ import annotations

import json

import pytest

from test_pipeline_equivalence import (
    FIRST_WORLD,
    SECOND_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro.core.kepler import Kepler, KeplerParams
from repro.pipeline import fork_available
from repro.scenarios import World, build_world

pytestmark = pytest.mark.skipif(
    not fork_available(),
    reason="process runtime requires the fork start method",
)

END_TIME = 80_000.0
#: Small IPC batches so mid-stream cuts land inside shipped batches.
PROCESS = dict(process_workers=2, process_batch=128)


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def world_b() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=SECOND_WORLD.seed, world_params=SECOND_WORLD)
    )


def make_kepler(
    world: World, params: KeplerParams, with_validator: bool
) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator() if with_validator else None,
    )


def full_run(
    replay: tuple[World, list, list],
    params: KeplerParams,
    with_validator: bool,
) -> tuple[list, list, list]:
    world, snapshot, elements = replay
    detector = make_kepler(world, params, with_validator)
    try:
        detector.prime(snapshot)
        detector.process(elements)
        detector.finalize(end_time=END_TIME)
        return observed(detector)
    finally:
        detector.close()


def observed(detector: Kepler) -> tuple[list, list, list]:
    return (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
        [(c.pop, c.bin_start) for c in detector.rejected],
    )


class TestDeterminism:
    def test_world_a_with_dataplane(self, world_a):
        linear = full_run(world_a, KeplerParams(), True)
        assert linear[0], "scenario produced no records to compare"
        process = full_run(world_a, KeplerParams(**PROCESS), True)
        assert process == linear

    def test_world_b_control_plane(self, world_b):
        linear = full_run(world_b, KeplerParams(), False)
        assert linear[0], "scenario produced no records to compare"
        process = full_run(world_b, KeplerParams(**PROCESS), False)
        assert process == linear

    def test_world_a_sharded_downstream(self, world_a):
        """shards=N drives the sharded runtime from the driver process."""
        linear = full_run(world_a, KeplerParams(), True)
        process = full_run(
            world_a, KeplerParams(shards=4, **PROCESS), True
        )
        assert process == linear


class TestCheckpointUnderProcessRuntime:
    def test_mid_stream_roundtrip_into_both_runtimes(self, world_a):
        """Snapshot under ProcessStagePipeline -> either runtime resumes."""
        world, snapshot, elements = world_a
        baseline = full_run(world_a, KeplerParams(), True)
        cut = len(elements) // 3

        first = make_kepler(world, KeplerParams(**PROCESS), True)
        try:
            first.prime(snapshot)
            first.process(elements[:cut])
            blob = json.dumps(first.snapshot())
        finally:
            first.close()

        for resume_params in (KeplerParams(**PROCESS), KeplerParams()):
            second = make_kepler(world, resume_params, True)
            try:
                second.restore(json.loads(blob))
                second.process(elements[cut:])
                second.finalize(end_time=END_TIME)
                assert observed(second) == baseline
            finally:
                second.close()

    def test_drain_barrier_snapshot_is_idempotent(self, world_a):
        """Back-to-back snapshots with no traffic in between match."""
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(**PROCESS), False)
        try:
            detector.prime(snapshot)
            detector.process(elements[: len(elements) // 2])
            first = json.dumps(detector.snapshot(), sort_keys=True)
            second = json.dumps(detector.snapshot(), sort_keys=True)
            assert first == second
        finally:
            detector.close()

    def test_process_checkpoint_matches_linear_checkpoint(self, world_a):
        """Composed document == the in-process document (timings aside)."""
        world, snapshot, elements = world_a
        cut = len(elements) // 2
        docs = []
        for params in (KeplerParams(), KeplerParams(**PROCESS)):
            detector = make_kepler(world, params, False)
            try:
                detector.prime(snapshot)
                detector.process(elements[:cut])
                docs.append(detector.snapshot())
            finally:
                detector.close()
        linear_doc, process_doc = docs

        def strip_timings(doc):
            metrics = doc["pipeline"]["metrics"]
            metrics["stages"] = [
                [name, fed, emitted] for name, fed, emitted, _ in metrics["stages"]
            ]
            bins = metrics["bins"]
            bins.pop("total_latency_s"), bins.pop("max_latency_s")
            return doc

        assert strip_timings(process_doc) == strip_timings(linear_doc)


class TestRuntimeSurface:
    def test_views_reflect_all_fed_elements(self, world_a):
        """Facade reads drain the queues: nothing fed is ever missing."""
        world, snapshot, elements = world_a
        linear = make_kepler(world, KeplerParams(), False)
        process = make_kepler(world, KeplerParams(**PROCESS), False)
        try:
            for detector in (linear, process):
                detector.prime(snapshot)
                detector.process(elements[: len(elements) // 2])
            assert process.primed_paths == linear.primed_paths
            assert len(process.signal_log) == len(linear.signal_log)
            assert len(process.records) == len(linear.records)
            process_metrics = {
                s["name"]: s for s in process.metrics.snapshot()["stages"]
            }
            linear_metrics = {
                s["name"]: s for s in linear.metrics.snapshot()["stages"]
            }
            assert set(process_metrics) == set(linear_metrics)
            for name, stats in linear_metrics.items():
                assert process_metrics[name]["fed"] == stats["fed"]
                assert process_metrics[name]["emitted"] == stats["emitted"]
        finally:
            linear.close()
            process.close()

    def test_sharded_process_metrics_include_downstream_stages(self, world_a):
        """The composed view must not drop the shard chains' stages."""
        world, snapshot, elements = world_a
        detector = make_kepler(
            world, KeplerParams(shards=2, **PROCESS), False
        )
        try:
            detector.prime(snapshot)
            detector.process(elements[: len(elements) // 2])
            names = {
                s["name"] for s in detector.metrics.snapshot()["stages"]
            }
            assert {"classify", "localise", "validate", "record"} <= names
        finally:
            detector.close()

    def test_load_state_preserves_cache_and_rejects(self, world_a):
        """pipeline.load_state must not wipe state it does not carry."""
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(**PROCESS), True)
        try:
            detector.prime(snapshot)
            detector.process(elements)
            probes_before = detector.stages.cache.probes
            rejects_before = len(detector.rejected)
            assert rejects_before > 0
            detector.pipeline.load_state(detector.pipeline.state_dict())
            assert detector.stages.cache.probes == probes_before
            assert len(detector.rejected) == rejects_before
        finally:
            detector.close()

    def test_close_is_idempotent_and_feed_after_close_raises(self, world_a):
        world, _, _ = world_a
        detector = make_kepler(world, KeplerParams(**PROCESS), False)
        detector.close()
        detector.close()
        with pytest.raises(RuntimeError, match="closed"):
            detector.snapshot()

    def test_rejects_invalid_configuration(self):
        from repro.pipeline.parallel import ProcessStagePipeline

        with pytest.raises(ValueError, match="tag worker"):
            ProcessStagePipeline(object(), workers=0)
        with pytest.raises(ValueError, match="batch_size"):
            ProcessStagePipeline(object(), workers=1, batch_size=0)


def test_fork_only_guard_message():
    """The constructor names the missing capability, not a traceback."""
    from repro.pipeline import parallel

    if not parallel.fork_available():
        with pytest.raises(RuntimeError, match="fork"):
            parallel.ProcessStagePipeline(object(), workers=1)
