"""Equivalence: the staged pipeline reproduces the monolithic detector.

Seed scenarios are replayed twice — through the frozen pre-refactor
``LegacyKepler`` (tests/_legacy_kepler.py) and through the pipeline-
backed :class:`repro.core.kepler.Kepler` facade — and the finalized
``OutageRecord`` lists must be identical field by field, on multiple
scenario worlds with distinct seeds, with and without a (deterministic)
data-plane validator.
"""

from __future__ import annotations

import pytest

from _legacy_kepler import LegacyKepler
from repro.core.dataplane import ValidationOutcome
from repro.core.kepler import Kepler, KeplerParams
from repro.docmine.dictionary import PoP
from repro.routing.events import (
    ASFailure,
    FacilityFailure,
    FacilityRecovery,
    IXPFailure,
    IXPRecovery,
    PartialFacilityFailure,
    PartialFacilityRecovery,
)
from repro.scenarios import World, build_world
from repro.topology.builder import WorldParams

# Defined locally (not imported from conftest: the bare `conftest`
# module name is ambiguous between tests/ and benchmarks/ when pytest
# runs from the repository root).
FIRST_WORLD = WorldParams(
    seed=7,
    n_tier1=5,
    n_tier2=20,
    n_access=60,
    n_content=18,
    n_facilities=50,
    n_ixps=12,
)

SECOND_WORLD = WorldParams(
    seed=11,
    n_tier1=4,
    n_tier2=18,
    n_access=50,
    n_content=14,
    n_facilities=40,
    n_ixps=10,
)


class DeterministicValidator:
    """Stateless data-plane stub: outcome is a pure function of input.

    Deterministic across processes (no salted ``hash``), so legacy and
    pipeline runs observe identical probe results — including the
    legacy path's duplicate probe of a (PoP, bin), which the pipeline
    memoises away.
    """

    def __init__(self) -> None:
        self.calls = 0

    def validate(self, pop: PoP, time: float) -> ValidationOutcome:
        self.calls += 1
        digest = sum(ord(ch) for ch in f"{pop.kind.value}:{pop.pop_id}")
        digest = (digest + int(time) // 60) % 5
        if digest == 0:
            return ValidationOutcome.REJECTED
        if digest in (1, 2):
            return ValidationOutcome.CONFIRMED
        return ValidationOutcome.INCONCLUSIVE

    def restored_fraction(self, pop: PoP, time: float) -> float | None:
        return None


def outage_events(world: World) -> list[tuple[float, object]]:
    """A diverse event mix: full, oscillating, partial, non-infra."""
    fac_ids = sorted(
        f
        for f, tenants in world.topo.facility_tenants.items()
        if len(tenants) >= 8
    )
    ixp_ids = sorted(
        i for i, members in world.topo.ixp_members.items() if len(members) >= 8
    )
    tier1 = sorted(world.topo.ases)[0]
    events: list[tuple[float, object]] = [
        (10_000.0, FacilityFailure(fac_ids[0])),
        (14_000.0, FacilityRecovery(fac_ids[0])),
        (20_000.0, ASFailure(tier1)),
    ]
    if len(fac_ids) > 1:
        tenants = tuple(sorted(world.topo.facility_tenants[fac_ids[1]]))
        events += [
            (26_000.0, PartialFacilityFailure(fac_ids[1], tenants[: len(tenants) // 2])),
            (30_000.0, PartialFacilityRecovery(fac_ids[1], tenants[: len(tenants) // 2])),
        ]
    if ixp_ids:
        events += [
            (36_000.0, IXPFailure(ixp_ids[0])),
            (38_000.0, IXPRecovery(ixp_ids[0])),
        ]
    # Oscillation: two more cycles at the first facility within the gap.
    events += [
        (42_000.0, FacilityFailure(fac_ids[0])),
        (44_000.0, FacilityRecovery(fac_ids[0])),
        (49_000.0, FacilityFailure(fac_ids[0])),
        (51_000.0, FacilityRecovery(fac_ids[0])),
    ]
    return events


def record_fields(record) -> tuple:
    return (
        record.signal_pop,
        record.located_pop,
        record.start,
        record.end,
        record.method,
        record.city_scope,
        record.merged_incidents,
        record.confirmed_by_dataplane,
        frozenset(record.affected_ases),
        frozenset(record.affected_links),
    )


def prepared(world: World) -> tuple[World, list, list]:
    """World + RIB snapshot + element stream, generated exactly once.

    The routing engine is stateful (events must be chronological), so
    one replay stream is shared by every test of a world.
    """
    snapshot = world.rib_snapshot(0.0)
    elements = world.run_events(outage_events(world))
    return world, snapshot, elements


def run_both(replay: tuple[World, list, list], with_validator: bool):
    world, snapshot, elements = replay
    detectors = []
    for cls in (LegacyKepler, Kepler):
        validator = DeterministicValidator() if with_validator else None
        detector = cls(
            dictionary=world.dictionary,
            colo=world.colo,
            as2org=world.as2org,
            params=KeplerParams(),
            validator=validator,
        )
        detector.prime(snapshot)
        detector.process(elements)
        detector.finalize(end_time=80_000.0)
        detectors.append(detector)
    return detectors


def assert_equivalent(legacy, staged) -> None:
    assert [record_fields(r) for r in legacy.records] == [
        record_fields(r) for r in staged.records
    ]
    assert legacy.signal_counts() == staged.signal_counts()
    assert len(legacy.signal_log) == len(staged.signal_log)
    for a, b in zip(legacy.signal_log, staged.signal_log):
        assert (a.pop, a.signal_type, a.bin_start, a.bin_end) == (
            b.pop,
            b.signal_type,
            b.bin_start,
            b.bin_end,
        )
    assert [(c.pop, c.bin_start) for c in legacy.rejected] == [
        (c.pop, c.bin_start) for c in staged.rejected
    ]


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def world_b() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=SECOND_WORLD.seed, world_params=SECOND_WORLD)
    )


class TestEquivalence:
    def test_world_a_control_plane_only(self, world_a):
        legacy, staged = run_both(world_a, with_validator=False)
        assert staged.records, "scenario produced no records to compare"
        assert_equivalent(legacy, staged)

    def test_world_b_control_plane_only(self, world_b):
        legacy, staged = run_both(world_b, with_validator=False)
        assert staged.records, "scenario produced no records to compare"
        assert_equivalent(legacy, staged)

    def test_world_a_with_dataplane(self, world_a):
        legacy, staged = run_both(world_a, with_validator=True)
        assert_equivalent(legacy, staged)

    def test_world_b_with_dataplane(self, world_b):
        legacy, staged = run_both(world_b, with_validator=True)
        assert_equivalent(legacy, staged)

    def test_memoisation_never_probes_a_bin_twice(self, world_a):
        legacy, staged = run_both(world_a, with_validator=True)
        probed = staged.stages.cache.probes
        # The pipeline may probe strictly fewer times (per-bin memo) but
        # never more, and each (pop, bin) at most once.
        assert probed <= legacy.validator.calls
        assert staged.validator.calls == probed
