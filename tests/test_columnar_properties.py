"""Property-based tests for the columnar wire-batch codec.

The columnar transport (:func:`repro.core.serde.encode_batch` /
:func:`~repro.core.serde.decode_batch`) must be observationally
equivalent to the per-element object path
(:func:`~repro.core.serde.element_to_wire` /
:func:`~repro.core.serde.element_from_wire`) over the full inter-stage
vocabulary.  The strategies deliberately draw paths and community
tuples from small pools so batches carry *duplicate and interleaved*
attribute values — the case the per-batch intern tables dedupe — and
mix every element family in one batch to exercise the slot-order
``kinds`` column.
"""

from __future__ import annotations

import marshal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.communities import Community
from repro.bgp.messages import (
    BGPStateMessage,
    BGPUpdate,
    ElemType,
    SessionState,
)
from repro.core.input import PoPTag, TaggedPath
from repro.core.serde import (
    decode_batch,
    element_from_wire,
    element_to_wire,
    encode_batch,
)
from repro.docmine.dictionary import PoP, PoPKind
from repro.pipeline.events import BinAdvanced, PrimedPath, PrimingUpdate

# Small pools force cross-element sharing: distinct elements carrying
# the same attribute tuples is the common case on a real feed (one
# peer re-announcing its table) and the one the intern tables dedupe.
_PATH_POOL = [
    (65001,),
    (65001, 65002),
    (65001, 65002, 65003),
    (64999, 65002, 65010, 65020),
]
_COMM_POOL = [
    (),
    (Community(65001, 100),),
    (Community(65001, 100), Community(65002, 200)),
    (Community(65002, 200), Community(65001, 100)),
]
_POP_POOL = [
    PoP(PoPKind.CITY, "london"),
    PoP(PoPKind.FACILITY, "fac-1"),
    PoP(PoPKind.IXP, "ix-1"),
]

times = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
collectors = st.sampled_from(["rrc00", "rrc01", "route-views2"])
peers = st.integers(min_value=1, max_value=70000)
prefixes = st.sampled_from(["10.0.0.0/8", "192.0.2.0/24", "2001:db8::/32"])
paths = st.sampled_from(_PATH_POOL)
communities = st.sampled_from(_COMM_POOL)


@st.composite
def announcements(draw):
    return BGPUpdate(
        time=draw(times),
        collector=draw(collectors),
        peer_asn=draw(peers),
        prefix=draw(prefixes),
        elem_type=ElemType.ANNOUNCEMENT,
        as_path=draw(paths),
        communities=draw(communities),
        afi=draw(st.sampled_from([4, 6])),
    )


@st.composite
def withdrawals(draw):
    return BGPUpdate(
        time=draw(times),
        collector=draw(collectors),
        peer_asn=draw(peers),
        prefix=draw(prefixes),
        elem_type=ElemType.WITHDRAWAL,
        afi=draw(st.sampled_from([4, 6])),
    )


@st.composite
def state_messages(draw):
    return BGPStateMessage(
        time=draw(times),
        collector=draw(collectors),
        peer_asn=draw(peers),
        old_state=draw(st.sampled_from(list(SessionState))),
        new_state=draw(st.sampled_from(list(SessionState))),
    )


@st.composite
def pop_tags(draw):
    return PoPTag(
        pop=draw(st.sampled_from(_POP_POOL)),
        near_asn=draw(st.one_of(st.none(), peers)),
        far_asn=draw(st.one_of(st.none(), peers)),
    )


@st.composite
def tagged_paths(draw):
    return TaggedPath(
        key=(draw(collectors), draw(peers), draw(prefixes)),
        time=draw(times),
        elem_type=draw(
            st.sampled_from([ElemType.ANNOUNCEMENT, ElemType.WITHDRAWAL])
        ),
        as_path=draw(paths),
        tags=tuple(draw(st.lists(pop_tags(), max_size=3))),
        afi=draw(st.sampled_from([4, 6])),
    )


elements = st.one_of(
    announcements(),
    withdrawals(),
    state_messages(),
    tagged_paths(),
    announcements().map(lambda u: PrimingUpdate(update=u)),
    tagged_paths().map(lambda t: PrimedPath(path=t)),
    times.map(lambda now: BinAdvanced(now=now)),
)
batches = st.lists(elements, max_size=40)


def _wire_forms(batch):
    return [element_to_wire(element) for element in batch]


class TestColumnarRoundTrip:
    @given(batches)
    @settings(max_examples=200)
    def test_decode_inverts_encode(self, batch):
        decoded = decode_batch(encode_batch(batch))
        assert decoded == batch

    @given(batches)
    @settings(max_examples=200)
    def test_columnar_equals_object_path(self, batch):
        """Same observable elements as the per-element wire envelopes."""
        via_columns = decode_batch(encode_batch(batch))
        via_objects = [
            element_from_wire(wire) for wire in _wire_forms(batch)
        ]
        assert via_columns == via_objects
        assert _wire_forms(via_columns) == _wire_forms(batch)

    @given(batches)
    @settings(max_examples=100)
    def test_batch_survives_marshal(self, batch):
        """The transport serialises batches with marshal, not pickle."""
        packed = marshal.dumps(encode_batch(batch), 2)
        assert decode_batch(marshal.loads(packed)) == batch

    @given(st.lists(announcements(), min_size=2, max_size=20))
    @settings(max_examples=100)
    def test_duplicate_attributes_share_interned_objects(self, updates):
        """Equal paths dedupe to one table entry and one decoded object."""
        batch = encode_batch(updates)
        path_tab = batch[4]
        assert len(path_tab) == len(set(path_tab))
        decoded = decode_batch(batch)
        by_value: dict = {}
        for update in decoded:
            first = by_value.setdefault(update.as_path, update.as_path)
            assert first is update.as_path
