"""Property-based tests for the columnar wire-batch codec.

The columnar transport (:func:`repro.core.serde.encode_batch` /
:func:`~repro.core.serde.decode_batch`) must be observationally
equivalent to the per-element object path
(:func:`~repro.core.serde.element_to_wire` /
:func:`~repro.core.serde.element_from_wire`) over the full inter-stage
vocabulary.  The strategies deliberately draw paths and community
tuples from small pools so batches carry *duplicate and interleaved*
attribute values — the case the per-batch intern tables dedupe — and
mix every element family in one batch to exercise the slot-order
``kinds`` column.
"""

from __future__ import annotations

import marshal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.communities import Community
from repro.bgp.messages import (
    BGPStateMessage,
    BGPUpdate,
    ElemType,
    SessionState,
)
from repro.core.input import PoPTag, TaggedPath
from repro.core.serde import (
    decode_batch,
    element_from_wire,
    element_to_wire,
    encode_batch,
)
from repro.docmine.dictionary import PoP, PoPKind
from repro.pipeline.events import BinAdvanced, PrimedPath, PrimingUpdate

# Small pools force cross-element sharing: distinct elements carrying
# the same attribute tuples is the common case on a real feed (one
# peer re-announcing its table) and the one the intern tables dedupe.
_PATH_POOL = [
    (65001,),
    (65001, 65002),
    (65001, 65002, 65003),
    (64999, 65002, 65010, 65020),
]
_COMM_POOL = [
    (),
    (Community(65001, 100),),
    (Community(65001, 100), Community(65002, 200)),
    (Community(65002, 200), Community(65001, 100)),
]
_POP_POOL = [
    PoP(PoPKind.CITY, "london"),
    PoP(PoPKind.FACILITY, "fac-1"),
    PoP(PoPKind.IXP, "ix-1"),
]

times = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
collectors = st.sampled_from(["rrc00", "rrc01", "route-views2"])
peers = st.integers(min_value=1, max_value=70000)
prefixes = st.sampled_from(["10.0.0.0/8", "192.0.2.0/24", "2001:db8::/32"])
paths = st.sampled_from(_PATH_POOL)
communities = st.sampled_from(_COMM_POOL)


@st.composite
def announcements(draw):
    return BGPUpdate(
        time=draw(times),
        collector=draw(collectors),
        peer_asn=draw(peers),
        prefix=draw(prefixes),
        elem_type=ElemType.ANNOUNCEMENT,
        as_path=draw(paths),
        communities=draw(communities),
        afi=draw(st.sampled_from([4, 6])),
    )


@st.composite
def withdrawals(draw):
    return BGPUpdate(
        time=draw(times),
        collector=draw(collectors),
        peer_asn=draw(peers),
        prefix=draw(prefixes),
        elem_type=ElemType.WITHDRAWAL,
        afi=draw(st.sampled_from([4, 6])),
    )


@st.composite
def state_messages(draw):
    return BGPStateMessage(
        time=draw(times),
        collector=draw(collectors),
        peer_asn=draw(peers),
        old_state=draw(st.sampled_from(list(SessionState))),
        new_state=draw(st.sampled_from(list(SessionState))),
    )


@st.composite
def pop_tags(draw):
    return PoPTag(
        pop=draw(st.sampled_from(_POP_POOL)),
        near_asn=draw(st.one_of(st.none(), peers)),
        far_asn=draw(st.one_of(st.none(), peers)),
    )


@st.composite
def tagged_paths(draw):
    return TaggedPath(
        key=(draw(collectors), draw(peers), draw(prefixes)),
        time=draw(times),
        elem_type=draw(
            st.sampled_from([ElemType.ANNOUNCEMENT, ElemType.WITHDRAWAL])
        ),
        as_path=draw(paths),
        tags=tuple(draw(st.lists(pop_tags(), max_size=3))),
        afi=draw(st.sampled_from([4, 6])),
    )


elements = st.one_of(
    announcements(),
    withdrawals(),
    state_messages(),
    tagged_paths(),
    announcements().map(lambda u: PrimingUpdate(update=u)),
    tagged_paths().map(lambda t: PrimedPath(path=t)),
    times.map(lambda now: BinAdvanced(now=now)),
)
batches = st.lists(elements, max_size=40)


def _wire_forms(batch):
    return [element_to_wire(element) for element in batch]


class TestColumnarRoundTrip:
    @given(batches)
    @settings(max_examples=200)
    def test_decode_inverts_encode(self, batch):
        decoded = decode_batch(encode_batch(batch))
        assert decoded == batch

    @given(batches)
    @settings(max_examples=200)
    def test_columnar_equals_object_path(self, batch):
        """Same observable elements as the per-element wire envelopes."""
        via_columns = decode_batch(encode_batch(batch))
        via_objects = [
            element_from_wire(wire) for wire in _wire_forms(batch)
        ]
        assert via_columns == via_objects
        assert _wire_forms(via_columns) == _wire_forms(batch)

    @given(batches)
    @settings(max_examples=100)
    def test_batch_survives_marshal(self, batch):
        """The transport serialises batches with marshal, not pickle."""
        packed = marshal.dumps(encode_batch(batch), 2)
        assert decode_batch(marshal.loads(packed)) == batch

    @given(st.lists(announcements(), min_size=2, max_size=20))
    @settings(max_examples=100)
    def test_duplicate_attributes_share_interned_objects(self, updates):
        """Equal paths dedupe to one table entry and one decoded object."""
        batch = encode_batch(updates)
        path_tab = batch[4]
        assert len(path_tab) == len(set(path_tab))
        decoded = decode_batch(batch)
        by_value: dict = {}
        for update in decoded:
            first = by_value.setdefault(update.as_path, update.as_path)
            assert first is update.as_path


# ----------------------------------------------------------------------
# Batch-native execution: the wire lane must be observationally
# invisible.  Whole scenario streams run twice — once with the
# batch-native hot path (tagging straight into columns, monitor
# folding column runs) and once with the object-materialising path —
# and everything an operator can see (records, signal log, rejects)
# plus the checkpoint document must come out identical, whatever the
# batch cut points, chunk sizes and shard counts.
# ----------------------------------------------------------------------
import dataclasses
import json
from functools import lru_cache
from types import SimpleNamespace

from hypothesis import HealthCheck

from repro.core.kepler import KeplerParams
from repro.core.serde import tag_elements_to_wire, tagged_view
from repro.pipeline.runtime import StagePipeline
from repro.routing.events import FacilityFailure, FacilityRecovery
from repro.scenarios import build_world
from repro.topology.builder import WorldParams

_WORLD_PARAMS = {
    7: WorldParams(
        seed=7,
        n_tier1=5,
        n_tier2=20,
        n_access=60,
        n_content=18,
        n_facilities=50,
        n_ixps=12,
    ),
    11: WorldParams(
        seed=11,
        n_tier1=4,
        n_tier2=18,
        n_access=50,
        n_content=14,
        n_facilities=40,
        n_ixps=10,
    ),
}


@lru_cache(maxsize=None)
def _scenario(seed: int):
    """(world, priming, stream) for one generated world.

    The stream mixes an infrastructure outage (so the equivalence is
    not vacuous — signals must be raised), steady-state churn
    (re-announcements the monitor's skip path absorbs) and
    withdraw/re-announce flaps, ordered by time so both lanes admit
    elements identically.
    """
    world = build_world(seed=seed, world_params=_WORLD_PARAMS[seed])
    priming = world.rib_snapshot(0.0)
    fac_id = sorted(
        f
        for f, tenants in world.topo.facility_tenants.items()
        if len(tenants) >= 6
    )[0]
    stream = world.run_events(
        [
            (3600.0, FacilityFailure(fac_id)),
            (9000.0, FacilityRecovery(fac_id)),
        ]
    )
    churn: list = []
    announcements = [u for u in priming if u.as_path][:1000]
    for i, update in enumerate(announcements):
        when = 600.0 + 7.0 * i
        churn.append(
            dataclasses.replace(
                update, time=when, elem_type=ElemType.ANNOUNCEMENT
            )
        )
        if i % 5 == 0:
            churn.append(
                BGPUpdate(
                    time=when + 30.0,
                    collector=update.collector,
                    peer_asn=update.peer_asn,
                    prefix=update.prefix,
                    elem_type=ElemType.WITHDRAWAL,
                    afi=update.afi,
                )
            )
            churn.append(
                dataclasses.replace(
                    update,
                    time=when + 60.0,
                    elem_type=ElemType.ANNOUNCEMENT,
                )
            )
    elements = list(stream) + churn
    elements.sort(key=lambda e: e.sort_key())
    return world, priming, elements


def _observed(kepler) -> tuple:
    return (
        [
            (
                str(r.signal_pop),
                str(r.located_pop),
                r.start,
                r.end,
                tuple(sorted(r.affected_ases)),
                r.method,
            )
            for r in kepler.records
        ],
        [
            (str(c.pop), c.signal_type, c.bin_start, c.bin_end)
            for c in kepler.signal_log
        ],
        [(str(c.pop), c.bin_start) for c in kepler.rejected],
    )


def _checkpoint_bytes(kepler) -> bytes:
    """The checkpoint document minus run telemetry.

    Metrics registries hold wall-clock stage seconds (never identical
    between two runs of anything); all semantic state must be.  The
    sharded layout nests one registry per chain, so strip them
    recursively.
    """
    doc = kepler.snapshot()

    def strip(node):
        if isinstance(node, dict):
            node.pop("metrics", None)
            for value in node.values():
                strip(value)
        elif isinstance(node, list):
            for value in node:
                strip(value)

    strip(doc)
    return json.dumps(doc, sort_keys=True, default=repr).encode()


def _run_lane(seed, wire_lane, chunk_size, shards, cuts):
    world, priming, elements = _scenario(seed)
    previous = StagePipeline.use_wire_lane
    StagePipeline.use_wire_lane = wire_lane
    try:
        kepler = world.make_kepler(params=KeplerParams(shards=shards))
        chain = kepler.pipeline
        target = getattr(chain, "upstream", chain)
        target.chunk_size = chunk_size
        kepler.prime(priming)
        spans = sorted({c for c in cuts if c < len(elements)})
        spans.append(len(elements))
        start = 0
        for stop in spans:
            if stop > start:
                kepler.process(elements[start:stop])
                start = stop
        kepler.finalize(end_time=elements[-1].time + 3600.0)
        observed = _observed(kepler)
        checkpoint = _checkpoint_bytes(kepler)
        kepler.close()
        return observed, checkpoint
    finally:
        StagePipeline.use_wire_lane = previous


class TestBatchNativeEquivalence:
    @given(
        seed=st.sampled_from([7, 11]),
        chunk_size=st.sampled_from([1, 3, 61, 1024, 4096]),
        shards=st.sampled_from([0, 2, 3]),
        cuts=st.lists(
            st.integers(min_value=0, max_value=4000), max_size=4
        ),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.filter_too_much,
        ],
    )
    def test_wire_lane_matches_object_path(
        self, seed, chunk_size, shards, cuts
    ):
        """Identical records, signals, rejects and checkpoint bytes
        whatever the batch cut points, chunk size and shard count."""
        via_objects = _run_lane(seed, False, chunk_size, shards, cuts)
        via_columns = _run_lane(seed, True, chunk_size, shards, cuts)
        assert via_columns[0] == via_objects[0]
        assert via_columns[1] == via_objects[1]
        # Not vacuous: the stream must actually raise signals.
        assert via_objects[0][1]


class TestViewMaterialisation:
    """``TaggedBatchView`` row materialisation over both batch
    families: flat wire tables (IPC batches built by ``encode_batch``
    / ``wires_to_batch``) and object tables (in-process
    ``tag_elements_to_wire`` batches)."""

    @given(st.lists(tagged_paths(), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_wire_family_rows_match_decode(self, tagged):
        batch = encode_batch(tagged)
        view = tagged_view(batch)
        assert view is not None
        materialised = [view.tagged_at(i) for i in range(len(tagged))]
        assert materialised == decode_batch(batch) == tagged

    @given(st.lists(tagged_paths(), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_object_family_rows_match_source(self, tagged):
        stub = SimpleNamespace(
            _memo={},
            _lookup=None,
            parsed_count=0,
            memo_hits=0,
            discarded_count=0,
        )
        batch = tag_elements_to_wire(
            stub, tagged, fallback=lambda element: [element]
        )
        view = tagged_view(batch)
        assert view is not None
        materialised = [view.tagged_at(i) for i in range(len(tagged))]
        assert materialised == tagged
        # Object family: the view's tables hold the source tuples
        # themselves (equal values may dedupe to the first occurrence)
        # — no codec round trip ever rebuilds one.
        source_tags = {id(t.tags) for t in tagged}
        source_paths = {id(t.as_path) for t in tagged}
        for rebuilt in materialised:
            assert rebuilt.tags == () or id(rebuilt.tags) in source_tags
            assert (
                rebuilt.as_path == ()
                or id(rebuilt.as_path) in source_paths
            )
