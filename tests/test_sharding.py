"""Sharded pipeline: router units and shard-vs-linear equivalence.

The sharded runtime must be *invisible* in the output: on the same
replay, ``Kepler(shards=N)`` — serial or thread-pooled — produces
records, signal log and reject sequence identical to the linear chain.
"""

from __future__ import annotations

import pytest

from test_pipeline_equivalence import (
    FIRST_WORLD,
    SECOND_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro.core.events import OutageSignal
from repro.core.kepler import Kepler, KeplerParams
from repro.docmine.dictionary import PoP, PoPKind
from repro.pipeline import (
    BinAdvanced,
    ShardBatch,
    ShardRouter,
    SignalBatch,
    shard_of,
)
from repro.scenarios import World, build_world


def signal(pop: PoP, bin_start: float = 0.0) -> OutageSignal:
    return OutageSignal(
        pop=pop,
        near_asn=10,
        bin_start=bin_start,
        bin_end=bin_start + 60.0,
        diverted_paths=2,
        baseline_paths=10,
        links=frozenset({(10, 30)}),
    )


class TestShardRouter:
    def test_partitions_by_pop_hash(self):
        router = ShardRouter(4)
        pops = [PoP(PoPKind.FACILITY, f"f{i}") for i in range(12)]
        batch = SignalBatch(signals=[signal(p) for p in pops])
        (routed,) = router.feed(batch)
        assert isinstance(routed, ShardBatch)
        assert len(routed.batches) == 4
        for index, sub in enumerate(routed.batches):
            for s in sub.signals:
                assert shard_of(s.pop, 4) == index
        total = sum(len(sub.signals) for sub in routed.batches)
        assert total == len(pops)
        assert router.batches_routed == 1
        assert router.signals_routed == len(pops)

    def test_same_pop_same_shard(self):
        pop = PoP(PoPKind.IXP, "ix9")
        assert shard_of(pop, 8) == shard_of(PoP(PoPKind.IXP, "ix9"), 8)

    def test_global_now_bin_reaches_empty_subbatches(self):
        router = ShardRouter(3)
        pops = [PoP(PoPKind.FACILITY, f"f{i}") for i in range(3)]
        batch = SignalBatch(
            signals=[signal(pops[0], 120.0), signal(pops[1], 300.0)]
        )
        (routed,) = router.feed(batch)
        # Every sub-batch — including empty ones — carries the global
        # window clock (latest bin_start of the whole batch).
        assert all(sub.now_bin == 300.0 for sub in routed.batches)

    def test_markers_pass_through(self):
        router = ShardRouter(2)
        marker = BinAdvanced(now=600.0)
        assert router.feed(marker) == [marker]

    def test_rejects_degenerate_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(1)


# ----------------------------------------------------------------------
# Shard-vs-linear equivalence on the scenario worlds
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def world_b() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=SECOND_WORLD.seed, world_params=SECOND_WORLD)
    )


def run_one(
    replay: tuple[World, list, list],
    params: KeplerParams,
    with_validator: bool,
) -> Kepler:
    world, snapshot, elements = replay
    detector = Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator() if with_validator else None,
    )
    detector.prime(snapshot)
    detector.process(elements)
    detector.finalize(end_time=80_000.0)
    detector.close()
    return detector


def assert_same_output(linear: Kepler, sharded: Kepler) -> None:
    assert [record_fields(r) for r in linear.records] == [
        record_fields(r) for r in sharded.records
    ]
    assert len(linear.signal_log) == len(sharded.signal_log)
    for a, b in zip(linear.signal_log, sharded.signal_log):
        assert (a.pop, a.signal_type, a.bin_start, a.bin_end) == (
            b.pop,
            b.signal_type,
            b.bin_start,
            b.bin_end,
        )
    assert [(c.pop, c.bin_start) for c in linear.rejected] == [
        (c.pop, c.bin_start) for c in sharded.rejected
    ]
    assert linear.signal_counts() == sharded.signal_counts()


class TestShardedEquivalence:
    @pytest.mark.parametrize("with_validator", [False, True])
    def test_world_a_four_shards(self, world_a, with_validator):
        linear = run_one(world_a, KeplerParams(), with_validator)
        sharded = run_one(
            world_a, KeplerParams(shards=4), with_validator
        )
        assert linear.records, "scenario produced no records to compare"
        assert_same_output(linear, sharded)

    @pytest.mark.parametrize("with_validator", [False, True])
    def test_world_b_four_shards(self, world_b, with_validator):
        linear = run_one(world_b, KeplerParams(), with_validator)
        sharded = run_one(
            world_b, KeplerParams(shards=4), with_validator
        )
        assert linear.records, "scenario produced no records to compare"
        assert_same_output(linear, sharded)

    def test_thread_pool_matches_serial(self, world_a):
        serial = run_one(world_a, KeplerParams(shards=3), True)
        pooled = run_one(
            world_a, KeplerParams(shards=3, shard_workers=3), True
        )
        assert_same_output(serial, pooled)

    def test_probe_memo_shared_across_shards(self, world_a):
        linear = run_one(world_a, KeplerParams(), True)
        sharded = run_one(world_a, KeplerParams(shards=4), True)
        # One shared cache: never more probes than the linear chain,
        # and each (PoP, bin) at most once.
        assert sharded.stages.cache.probes <= linear.validator.calls
        assert sharded.validator.calls == sharded.stages.cache.probes

    def test_metrics_aggregate_with_per_shard_breakdown(self, world_a):
        sharded = run_one(world_a, KeplerParams(shards=4), False)
        snap = sharded.metrics.snapshot()
        names = {s["name"] for s in snap["stages"]}
        assert {"ingest", "tagging", "monitor", "route"} <= names
        assert {"classify", "localise", "validate", "record"} <= names
        assert len(snap["shards"]) == 4
        aggregated = {s["name"]: s["fed"] for s in snap["stages"]}
        per_shard_fed = sum(
            stage["fed"]
            for shard in snap["shards"]
            for stage in shard["stages"]
            if stage["name"] == "classify"
        )
        assert aggregated["classify"] == per_shard_fed
