"""Unit tests for the staged streaming runtime and individual stages."""

from __future__ import annotations

import pytest

from repro.bgp.messages import (
    BGPStateMessage,
    BGPUpdate,
    ElemType,
    SessionState,
)
from repro.core.dataplane import NullValidator, ValidationOutcome
from repro.core.events import OutageSignal
from repro.core.input import PoPTag, TaggedPath
from repro.core.monitor import MonitorParams, OutageMonitor
from repro.docmine.dictionary import PoP, PoPKind
from repro.pipeline import (
    BinAdvanced,
    BinningMonitorStage,
    ClassificationStage,
    IngestStage,
    PassthroughStage,
    PipelineMetrics,
    SignalBatch,
    StagePipeline,
    ValidationCache,
    merge_streams,
)

POP_F = PoP(PoPKind.FACILITY, "f1")


def tagged(key, time, pops=(POP_F,), near=10, far=30, withdraw=False):
    tags = tuple(PoPTag(pop=p, near_asn=near, far_asn=far) for p in pops)
    return TaggedPath(
        key=key,
        time=time,
        elem_type=ElemType.WITHDRAWAL if withdraw else ElemType.ANNOUNCEMENT,
        as_path=() if withdraw else (1, near, far),
        tags=() if withdraw else tags,
        afi=4,
    )


def key(i: int):
    return ("rrc00", 100, f"10.0.{i}.0/24")


def update(i: int, time: float) -> BGPUpdate:
    return BGPUpdate(
        time=time,
        collector="rrc00",
        peer_asn=100,
        prefix=f"10.0.{i}.0/24",
        elem_type=ElemType.ANNOUNCEMENT,
        as_path=(100, 10, 30),
    )


def state_message(time: float) -> BGPStateMessage:
    return BGPStateMessage(
        time=time,
        collector="rrc00",
        peer_asn=100,
        old_state=SessionState.ESTABLISHED,
        new_state=SessionState.IDLE,
    )


class Doubler(PassthroughStage):
    name = "doubler"

    def feed(self, element):
        return [element, element]


class Dropper(PassthroughStage):
    name = "dropper"

    def feed(self, element):
        return [] if element == "drop" else [element]


class Trailer(PassthroughStage):
    name = "trailer"

    def __init__(self):
        self.buffered = []

    def feed(self, element):
        self.buffered.append(element)
        return [element]

    def flush(self):
        return ["trailing"]


class TestStagePipeline:
    def test_elements_thread_through_stages(self):
        pipeline = StagePipeline([Doubler(), Dropper()])
        assert pipeline.feed("x") == ["x", "x"]
        assert pipeline.feed("drop") == []

    def test_metrics_count_fed_and_emitted(self):
        metrics = PipelineMetrics()
        pipeline = StagePipeline([Doubler(), Dropper()], metrics=metrics)
        pipeline.feed("x")
        pipeline.feed("drop")
        assert metrics.stage("doubler").fed == 2
        assert metrics.stage("doubler").emitted == 4
        assert metrics.stage("dropper").fed == 4
        assert metrics.stage("dropper").emitted == 2

    def test_flush_cascades_through_downstream_stages(self):
        pipeline = StagePipeline([Trailer(), Doubler()])
        out = pipeline.flush()
        assert out == ["trailing", "trailing"]

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            StagePipeline([Doubler(), Doubler()])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            StagePipeline([])

    def test_snapshot_is_json_shaped(self):
        metrics = PipelineMetrics()
        pipeline = StagePipeline([Doubler()], metrics=metrics)
        pipeline.feed("x")
        snap = metrics.snapshot()
        assert snap["stages"][0]["name"] == "doubler"
        assert "bins" in snap
        assert isinstance(metrics.describe(), str)


class TestIngestStage:
    def test_counts_element_kinds(self):
        stage = IngestStage()
        stage.feed(update(0, 1.0))
        stage.feed(state_message(2.0))
        stage.feed(
            BGPUpdate(
                time=3.0,
                collector="rrc00",
                peer_asn=100,
                prefix="10.0.0.0/24",
                elem_type=ElemType.WITHDRAWAL,
            )
        )
        assert (stage.announcements, stage.state_messages, stage.withdrawals) == (1, 1, 1)

    def test_foreign_objects_dropped(self):
        stage = IngestStage()
        assert stage.feed(object()) == []
        assert stage.dropped == 1

    def test_dropped_types_metered_and_checkpointed(self):
        stage = IngestStage()
        stage.feed(object())
        stage.feed(object())
        stage.feed("not an element")
        assert stage.dropped == 3
        assert stage.dropped_types == {"object": 2, "str": 1}
        state = stage.state_dict()
        assert state["dropped_types"] == {"object": 2, "str": 1}
        fresh = IngestStage()
        fresh.load_state(state)
        assert fresh.dropped_types == {"object": 2, "str": 1}

    def test_out_of_order_counted_not_dropped(self):
        stage = IngestStage()
        stage.feed(update(0, 10.0))
        out = stage.feed(update(1, 5.0))
        assert out and stage.out_of_order == 1

    def test_merge_streams_sorts_lazily(self):
        a = [update(0, 1.0), update(0, 5.0)]
        b = [update(1, 2.0), update(1, 4.0)]
        merged = list(merge_streams(a, b))
        assert [e.time for e in merged] == [1.0, 2.0, 4.0, 5.0]


class TestBinningMonitorStage:
    def _primed(self, n=10):
        monitor = OutageMonitor(MonitorParams())
        for i in range(n):
            monitor.prime(tagged(key(i), time=0.0))
        return monitor

    def test_emits_signals_then_bin_advanced(self):
        monitor = self._primed()
        metrics = PipelineMetrics()
        stage = BinningMonitorStage(monitor, metrics=metrics)
        for i in range(3):
            assert stage.feed(tagged(key(i), time=10.0, withdraw=True)) == []
        out = stage.feed(tagged(key(5), time=70.0))
        assert isinstance(out[0], SignalBatch)
        assert isinstance(out[1], BinAdvanced)
        assert out[1].now == 60.0
        assert metrics.bins.count == 1
        assert metrics.bins.last_baseline_entries == 7

    def test_state_messages_consumed_silently(self):
        stage = BinningMonitorStage(self._primed())
        assert stage.feed(state_message(5.0)) == []

    def test_sparse_stream_counts_every_closed_bin(self):
        # One element three bins later closes three bins: the metrics
        # gauge must agree with the monitor's own bin count.
        monitor = self._primed()
        metrics = PipelineMetrics()
        stage = BinningMonitorStage(monitor, metrics=metrics)
        stage.feed(tagged(key(0), time=10.0, withdraw=True))
        stage.feed(tagged(key(1), time=200.0))
        assert metrics.bins.count == monitor.bins_processed == 3

    def test_flush_closes_trailing_bin_without_advance(self):
        monitor = self._primed()
        stage = BinningMonitorStage(monitor)
        stage.feed(tagged(key(0), time=10.0, withdraw=True))
        out = stage.flush()
        assert len(out) == 1 and isinstance(out[0], SignalBatch)


def signal(pop, near, links, bin_start=0.0):
    return OutageSignal(
        pop=pop,
        near_asn=near,
        bin_start=bin_start,
        bin_end=bin_start + 60.0,
        diverted_paths=len(links),
        baseline_paths=len(links),
        links=frozenset(links),
    )


class TestClassificationStage:
    def _pop_level_signals(self, bin_start=0.0):
        # 4 disjoint near ASes x 4 disjoint far ASes: PoP-level.
        links = [(n, n + 100) for n in (1, 2, 3, 4)]
        return [
            signal(POP_F, n, [(n, n + 100)], bin_start=bin_start)
            for n, _ in links
        ]

    def test_pop_level_batch_emitted(self):
        stage = ClassificationStage(as2org={})
        out = stage.feed(SignalBatch(self._pop_level_signals()))
        assert len(out) == 1
        assert out[0].pop_level[0].pop == POP_F
        assert out[0].concurrent == {POP_F}
        assert len(stage.signal_log) == 1

    def test_sub_pop_signals_logged_but_not_forwarded(self):
        stage = ClassificationStage(as2org={})
        out = stage.feed(SignalBatch([signal(POP_F, 1, [(1, 101)])]))
        assert out == []
        assert len(stage.signal_log) == 1

    def test_correlation_window_expires_old_signals(self):
        stage = ClassificationStage(as2org={}, correlation_window_s=180.0)
        stage.feed(SignalBatch([signal(POP_F, 1, [(1, 101)])]))
        assert len(stage._window) == 1
        stage.feed(SignalBatch([signal(POP_F, 2, [(2, 102)], bin_start=600.0)]))
        assert all(s.bin_start == 600.0 for s in stage._window)

    def test_adjacent_bins_correlate_into_pop_level(self):
        # 2 links in bin 0 + 2 links in bin 1: neither bin alone is
        # PoP-level, the correlated window is.
        stage = ClassificationStage(as2org={})
        first = [signal(POP_F, n, [(n, n + 100)]) for n in (1, 2)]
        second = [
            signal(POP_F, n, [(n, n + 100)], bin_start=60.0) for n in (3, 4)
        ]
        assert stage.feed(SignalBatch(first)) == []
        out = stage.feed(SignalBatch(second))
        assert len(out) == 1
        assert len(out[0].pop_level[0].links) == 4

    def test_markers_pass_through(self):
        stage = ClassificationStage(as2org={})
        marker = BinAdvanced(now=60.0)
        assert stage.feed(marker) == [marker]


class CountingValidator(NullValidator):
    def __init__(self):
        self.calls = 0

    def validate(self, pop, time):
        self.calls += 1
        return ValidationOutcome.CONFIRMED


class TestValidationCache:
    def test_memoises_per_pop_and_bin(self):
        validator = CountingValidator()
        cache = ValidationCache(validator)
        assert cache.validate(POP_F, 60.0) is ValidationOutcome.CONFIRMED
        assert cache.validate(POP_F, 60.0) is ValidationOutcome.CONFIRMED
        assert validator.calls == 1
        assert (cache.probes, cache.hits) == (1, 1)
        cache.validate(POP_F, 120.0)
        assert validator.calls == 2

    def test_prune_drops_old_bins(self):
        validator = CountingValidator()
        cache = ValidationCache(validator)
        cache.validate(POP_F, 60.0)
        cache.prune(older_than=100.0)
        cache.validate(POP_F, 60.0)
        assert validator.calls == 2

    def test_failed_probe_does_not_poison_the_key(self):
        class FlakyValidator:
            def __init__(self):
                self.calls = 0

            def validate(self, pop, time):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("probe timeout")
                return ValidationOutcome.CONFIRMED

            def restored_fraction(self, pop, time):
                return None

        cache = ValidationCache(FlakyValidator())
        with pytest.raises(RuntimeError):
            cache.validate(POP_F, 60.0)
        # The in-flight marker must not linger: the next caller retries
        # the probe instead of waiting forever on the failed one.
        assert cache.validate(POP_F, 60.0) is ValidationOutcome.CONFIRMED
        assert cache.probes == 1


class TestFlushMetering:
    def test_flush_cost_lands_in_stage_seconds(self):
        class SlowTrailer(PassthroughStage):
            name = "slow-trailer"

            def flush(self):
                import time as _time

                _time.sleep(0.01)
                return ["trailing"]

        metrics = PipelineMetrics()
        pipeline = StagePipeline([SlowTrailer(), Doubler()], metrics=metrics)
        out = pipeline.flush()
        assert out == ["trailing", "trailing"]
        # End-of-stream cost is part of the per-stage profile.
        assert metrics.stage("slow-trailer").seconds >= 0.01
        assert metrics.stage("slow-trailer").emitted == 1
        # The cascade into downstream stages is metered as ordinary feed.
        assert metrics.stage("doubler").fed == 1
        assert metrics.stage("doubler").emitted == 2


def _priming_input_module():
    from repro.bgp.communities import Community
    from repro.core.colocation import ColocationMap
    from repro.core.input import InputModule
    from repro.docmine.dictionary import CommunityDictionary, DictionaryEntry

    community = Community(10, 101)
    dictionary = CommunityDictionary(
        entries={
            community: DictionaryEntry(
                community=community,
                pop=POP_F,
                source_url="https://example.test",
                surface="f1",
            )
        }
    )
    return InputModule(dictionary, ColocationMap()), community


class TestStreamingPrime:
    def _rib_update(self, community, i=0, communities=True):
        return BGPUpdate(
            time=0.0,
            collector="rrc00",
            peer_asn=100,
            prefix=f"10.0.{i}.0/24",
            elem_type=ElemType.ANNOUNCEMENT,
            as_path=(100, 10, 30),
            communities=(community,) if communities else (),
        )

    def test_priming_updates_flow_to_baseline(self):
        from repro.pipeline import PrimingUpdate, TaggingStage

        input_module, community = _priming_input_module()
        monitor = OutageMonitor()
        pipeline = StagePipeline(
            [
                IngestStage(),
                TaggingStage(input_module),
                BinningMonitorStage(monitor),
            ]
        )
        for i in range(3):
            out = pipeline.feed(
                PrimingUpdate(update=self._rib_update(community, i))
            )
            assert out == []
        assert monitor.baseline_size(POP_F) == 3
        # Direct installation: the binning clock has not started.
        assert monitor.current_bin_start is None
        assert pipeline.stage_named("monitor").primed == 3
        assert pipeline.stage_named("ingest").priming_updates == 3

    def test_untagged_rib_paths_end_at_tagging(self):
        from repro.pipeline import PrimingUpdate, TaggingStage

        input_module, community = _priming_input_module()
        monitor = OutageMonitor()
        tagging = TaggingStage(input_module)
        monitoring = BinningMonitorStage(monitor)
        pipeline = StagePipeline([tagging, monitoring])
        out = pipeline.feed(
            PrimingUpdate(
                update=self._rib_update(community, communities=False)
            )
        )
        assert out == []
        assert monitor.baseline_size(POP_F) == 0
        assert monitoring.primed == 0

    def test_priming_does_not_disturb_stream_order_accounting(self):
        from repro.pipeline import PrimingUpdate

        ingest = IngestStage()
        ingest.feed(update(0, 100.0))
        # A late RIB chunk (snapshot timestamps predate the stream)
        # must not count as an out-of-order stream element.
        input_module, community = _priming_input_module()
        ingest.feed(PrimingUpdate(update=self._rib_update(community)))
        ingest.feed(update(1, 101.0))
        assert ingest.out_of_order == 0
        assert ingest.priming_updates == 1
