"""The sharded collector ingest tier (repro.ingest).

Three layers of guarantees:

* **The watermark merge core** is deterministic and exactly
  reproduces :func:`repro.pipeline.ingest.merge_streams` over the
  per-feed streams — hypothesis-pinned over arbitrary per-feed
  interleavings with duplicate timestamps, arbitrary delivery
  chunkings, feed counts and checkpoint cut points (the documented
  tie-break: ascending ``(sort key, feed index)``, per-feed FIFO).
* **The tier is a pure execution detail of the Kepler facade**: with
  ``KeplerParams(ingest_feeds=N)``, records, signal log, rejects and
  the per-stage counters are byte-identical to the driver ingest path
  on the same stream, composed with every runtime (linear, thread-
  sharded, tag-process, shard-process), for both the merged-stream
  ``process`` path and per-collector ``process_feeds`` sources.
* **Checkpoints are ingest-layout-free**: the canonical document's
  ingest section is identical whichever layout wrote it, and a
  snapshot taken under any ``ingest_feeds`` layout restores into any
  other with identical continued output.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_pipeline_equivalence import (
    FIRST_WORLD,
    SECOND_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro.bgp.messages import BGPUpdate, ElemType
from repro.core.kepler import Kepler, KeplerParams
from repro.ingest import WatermarkMerge, feed_of, split_by_collector
from repro.pipeline import fork_available, merge_streams
from repro.scenarios import World, build_world

END_TIME = 80_000.0

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="runtime requires the fork start method",
)


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def world_b() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=SECOND_WORLD.seed, world_params=SECOND_WORLD)
    )


def make_kepler(
    world: World, params: KeplerParams, with_validator: bool
) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator() if with_validator else None,
    )


def observed(detector: Kepler) -> tuple[list, list, list]:
    return (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
        [(c.pop, c.bin_start) for c in detector.rejected],
    )


def full_run(
    replay: tuple[World, list, list],
    params: KeplerParams,
    with_validator: bool,
    via_feeds: bool = False,
) -> tuple[list, list, list]:
    world, snapshot, elements = replay
    detector = make_kepler(world, params, with_validator)
    try:
        detector.prime(snapshot)
        if via_feeds:
            detector.process_feeds(split_by_collector(elements))
        else:
            detector.process(elements)
        detector.finalize(end_time=END_TIME)
        return observed(detector)
    finally:
        detector.close()


# ----------------------------------------------------------------------
# The watermark merge core (hypothesis)
# ----------------------------------------------------------------------
def _element(time: float, collector: str, prefix: str) -> BGPUpdate:
    return BGPUpdate(
        time=time,
        collector=collector,
        peer_asn=64_500,
        prefix=prefix,
        elem_type=ElemType.WITHDRAWAL,
    )


#: Deliberately tiny domains: duplicate sort keys (same time, same
#: collector, same prefix) and cross-feed equal timestamps are the
#: norm, not the exception, in the generated streams.
_elements = st.lists(
    st.builds(
        _element,
        time=st.integers(min_value=0, max_value=5).map(float),
        collector=st.sampled_from(["rrc00", "rrc01", "rrc03"]),
        prefix=st.sampled_from(["10.0.0.0/24", "10.1.0.0/24"]),
    ),
    max_size=24,
)


def _sorted_feeds(
    elements: list[BGPUpdate], n_feeds: int
) -> list[list[BGPUpdate]]:
    """Round-robin the union over N feeds, each feed time-sorted."""
    feeds: list[list[BGPUpdate]] = [[] for _ in range(n_feeds)]
    for index, element in enumerate(elements):
        feeds[index % n_feeds].append(element)
    for feed in feeds:
        feed.sort(key=lambda e: e.sort_key())
    return feeds


def _drive(
    merge: WatermarkMerge,
    feeds: list[list[BGPUpdate]],
    chunking: list[int],
) -> list[BGPUpdate]:
    """Deliver feed chunks in a data-driven interleaving; collect releases.

    ``chunking`` picks, per step, which feed publishes next and how
    many elements it publishes — arbitrary concurrency schedules,
    deterministically replayed.
    """
    out: list[BGPUpdate] = []
    cursors = [0] * len(feeds)
    step = 0
    while any(cursors[f] < len(feeds[f]) for f in range(len(feeds))):
        choice = chunking[step % len(chunking)] if chunking else 0
        step += 1
        fid = choice % len(feeds)
        if cursors[fid] >= len(feeds[fid]):
            fid = next(
                f for f in range(len(feeds)) if cursors[f] < len(feeds[f])
            )
        size = 1 + (choice // len(feeds)) % 4
        batch = feeds[fid][cursors[fid] : cursors[fid] + size]
        cursors[fid] += size
        merge.push(
            fid,
            [(e.sort_key(), e) for e in batch],
            batch[-1].sort_key(),
        )
        out.extend(merge.release())
    for fid in range(len(feeds)):
        merge.end_of_run(fid)
    out.extend(merge.release())
    return out


class TestWatermarkMerge:
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        elements=_elements,
        n_feeds=st.integers(min_value=1, max_value=4),
        chunking=st.lists(
            st.integers(min_value=0, max_value=15), max_size=24
        ),
    )
    def test_release_order_equals_merge_streams(
        self, elements, n_feeds, chunking
    ):
        """Any interleaving releases exactly merge_streams(*feeds)."""
        feeds = _sorted_feeds(elements, n_feeds)
        reference = list(merge_streams(*feeds))
        merge = WatermarkMerge(n_feeds)
        merge.begin_run()
        released = _drive(merge, feeds, chunking)
        assert released == reference
        assert merge.drained
        assert merge.late_elements == 0
        assert merge.released == len(reference)

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        elements=_elements,
        cut=st.integers(min_value=0, max_value=24),
        first_feeds=st.integers(min_value=1, max_value=4),
        second_feeds=st.integers(min_value=1, max_value=4),
        chunking=st.lists(
            st.integers(min_value=0, max_value=15), max_size=16
        ),
    )
    def test_cursor_survives_checkpoint_cut_into_any_feed_count(
        self, elements, cut, first_feeds, second_feeds, chunking
    ):
        """Cut anywhere, restore the cursor into any layout, continue.

        The canonical cursor is just the release clock; a fresh merge
        with a different feed count continues the stream exactly where
        the first left off, with identical combined output.
        """
        elements.sort(key=lambda e: e.sort_key())
        cut = min(cut, len(elements))
        first_part, second_part = elements[:cut], elements[cut:]

        reference = list(
            merge_streams(*_sorted_feeds(first_part, first_feeds))
        ) + list(merge_streams(*_sorted_feeds(second_part, second_feeds)))

        first = WatermarkMerge(first_feeds)
        first.begin_run()
        released = _drive(first, _sorted_feeds(first_part, first_feeds), chunking)

        second = WatermarkMerge(second_feeds)
        second.set_cursor(first.last_time)  # the checkpointed cursor
        second.begin_run()
        released += _drive(
            second, _sorted_feeds(second_part, second_feeds), chunking
        )
        assert released == reference
        # Sorted input across the cut: nothing can arrive late.
        assert first.late_elements == 0 and second.late_elements == 0

    def test_min_watermark_gates_release(self):
        merge = WatermarkMerge(2)
        merge.begin_run()
        early = _element(1.0, "rrc00", "10.0.0.0/24")
        merge.push(0, [(early.sort_key(), early)], early.sort_key())
        # Feed 1 has made no promise yet: nothing may be released.
        assert merge.release() == []
        late_wm = _element(5.0, "rrc01", "10.0.0.0/24")
        merge.push(1, [], late_wm.sort_key())
        assert merge.release() == [early]

    def test_slow_feed_holds_watermark_but_eor_drains(self):
        merge = WatermarkMerge(3)
        merge.begin_run()
        a = _element(2.0, "rrc00", "10.0.0.0/24")
        merge.push(0, [(a.sort_key(), a)], a.sort_key())
        merge.push(1, [], _element(9.0, "rrc01", "x").sort_key())
        assert merge.release() == []  # feed 2 is silent
        merge.end_of_run(2)
        merge.end_of_run(1)
        merge.end_of_run(0)
        assert merge.release() == [a]
        assert merge.drained

    def test_late_element_is_surfaced_not_reordered(self):
        merge = WatermarkMerge(2)
        merge.begin_run()
        on_time = _element(5.0, "rrc00", "10.0.0.0/24")
        merge.push(0, [(on_time.sort_key(), on_time)], on_time.sort_key())
        merge.push(1, [], on_time.sort_key())
        assert merge.release() == [on_time]
        # A feed violates its promise: the element is released (next,
        # in arrival order — history cannot be rewritten) and counted.
        late = _element(1.0, "rrc01", "10.0.0.0/24")
        merge.push(1, [(late.sort_key(), late)], None)
        merge.end_of_run(0)
        merge.end_of_run(1)
        assert merge.release() == [late]
        assert merge.late_elements == 1
        assert merge.last_time == 5.0  # the clock never rewinds

    def test_cursor_restore_requires_drained_merge(self):
        merge = WatermarkMerge(1)
        element = _element(1.0, "rrc00", "10.0.0.0/24")
        merge.push(0, [(element.sort_key(), element)], None)
        with pytest.raises(RuntimeError, match="non-empty"):
            merge.set_cursor(42.0)

    def test_feed_of_is_stable_and_in_range(self):
        for feeds in (1, 2, 3, 8):
            for collector in ("rrc00", "rrc01", "route-views2"):
                fid = feed_of(collector, feeds)
                assert 0 <= fid < feeds
                assert fid == feed_of(collector, feeds)


class TestWireSortKey:
    def test_matches_element_sort_keys(self):
        from repro.bgp.messages import BGPStateMessage, SessionState
        from repro.core.serde import element_to_wire, wire_sort_key

        update = _element(3.0, "rrc00", "10.0.0.0/24")
        assert wire_sort_key(element_to_wire(update)) == update.sort_key()
        state = BGPStateMessage(
            time=4.0,
            collector="rrc01",
            peer_asn=64_500,
            old_state=SessionState.ESTABLISHED,
            new_state=SessionState.IDLE,
        )
        assert wire_sort_key(element_to_wire(state)) == state.sort_key()

    def test_rejects_unkeyed_vocabulary(self):
        from repro.core.serde import wire_sort_key

        with pytest.raises(ValueError, match="sort key"):
            wire_sort_key(["ba", 60.0])


# ----------------------------------------------------------------------
# Facade identity across runtimes
# ----------------------------------------------------------------------
class TestIngestTierIdentity:
    def test_world_a_linear_chain(self, world_a):
        linear = full_run(world_a, KeplerParams(), True)
        assert linear[0], "scenario produced no records to compare"
        tier = full_run(world_a, KeplerParams(ingest_feeds=3), True)
        assert tier == linear

    def test_world_a_sharded_chain(self, world_a):
        linear = full_run(world_a, KeplerParams(), True)
        tier = full_run(
            world_a,
            KeplerParams(ingest_feeds=2, shards=4, shard_workers=2),
            True,
        )
        assert tier == linear

    @needs_fork
    def test_world_a_process_workers(self, world_a):
        linear = full_run(world_a, KeplerParams(), True)
        tier = full_run(
            world_a,
            KeplerParams(
                ingest_feeds=3, process_workers=2, process_batch=128
            ),
            True,
        )
        assert tier == linear

    @needs_fork
    def test_world_a_shard_processes(self, world_a):
        linear = full_run(world_a, KeplerParams(), True)
        tier = full_run(
            world_a,
            KeplerParams(
                ingest_feeds=2, shard_processes=2, process_batch=256
            ),
            True,
        )
        assert tier == linear

    def test_world_b_control_plane(self, world_b):
        linear = full_run(world_b, KeplerParams(), False)
        assert linear[0], "scenario produced no records to compare"
        tier = full_run(world_b, KeplerParams(ingest_feeds=4), False)
        assert tier == linear

    def test_world_b_sharded_chain(self, world_b):
        linear = full_run(world_b, KeplerParams(), False)
        tier = full_run(
            world_b, KeplerParams(ingest_feeds=3, shards=2), False
        )
        assert tier == linear

    @needs_fork
    def test_world_b_process_workers(self, world_b):
        linear = full_run(world_b, KeplerParams(), False)
        tier = full_run(
            world_b,
            KeplerParams(
                ingest_feeds=2, process_workers=2, process_batch=256
            ),
            False,
        )
        assert tier == linear

    @needs_fork
    def test_world_b_shard_processes(self, world_b):
        linear = full_run(world_b, KeplerParams(), False)
        tier = full_run(
            world_b,
            KeplerParams(
                ingest_feeds=3, shard_processes=2, process_batch=256
            ),
            False,
        )
        assert tier == linear

    def test_world_a_collector_sources(self, world_a):
        """process_feeds over per-collector sources == process(merged)."""
        linear = full_run(world_a, KeplerParams(), True)
        tier = full_run(
            world_a, KeplerParams(ingest_feeds=3), True, via_feeds=True
        )
        assert tier == linear

    @needs_fork
    def test_world_b_collector_sources_into_shard_processes(self, world_b):
        """Forked feed workers hand wire batches to shard processes."""
        linear = full_run(world_b, KeplerParams(), False)
        tier = full_run(
            world_b,
            KeplerParams(
                ingest_feeds=3, shard_processes=2, process_batch=256
            ),
            False,
            via_feeds=True,
        )
        assert tier == linear

    def test_stage_counters_match_driver_ingest_path(self, world_a):
        world, snapshot, elements = world_a
        linear = make_kepler(world, KeplerParams(), False)
        tier = make_kepler(world, KeplerParams(ingest_feeds=3), False)
        try:
            for detector in (linear, tier):
                detector.prime(snapshot)
                detector.process(elements[: len(elements) // 2])
            linear_stages = {
                s["name"]: s for s in linear.metrics.snapshot()["stages"]
            }
            tier_stages = {
                s["name"]: s for s in tier.metrics.snapshot()["stages"]
            }
            assert set(tier_stages) == set(linear_stages)
            for name, stats in linear_stages.items():
                assert tier_stages[name]["fed"] == stats["fed"]
                assert tier_stages[name]["emitted"] == stats["emitted"]
        finally:
            linear.close()
            tier.close()

    def test_process_feeds_requires_the_tier(self, world_a):
        world, _, _ = world_a
        detector = make_kepler(world, KeplerParams(), False)
        with pytest.raises(ValueError, match="ingest_feeds"):
            detector.process_feeds([[]])
        detector.close()

    def test_single_element_feed_matches_the_run_path(self):
        """tier.feed(e) (inline fast path) == feed_many([...]) exactly."""
        from repro.ingest import IngestTier

        class CollectingSink:
            def __init__(self):
                self.payloads = []

            def feed_released(self, payloads, wired):
                self.payloads.extend(payloads)
                return []

            def feed_prime(self, element):
                return []

            def flush(self):
                return []

        elements = [
            _element(t, c, "10.0.0.0/24")
            for t, c in [(1.0, "rrc00"), (2.0, "rrc01"), (3.0, "rrc00")]
        ]
        one_sink, many_sink = CollectingSink(), CollectingSink()
        one = IngestTier(one_sink, feeds=2)
        many = IngestTier(many_sink, feeds=2)
        for element in elements:
            one.feed(element)
        many.feed_many(elements)
        assert one_sink.payloads == many_sink.payloads == elements
        assert one.composed_ingest_state() == many.composed_ingest_state()
        assert one.merge.last_released == many.merge.last_released

    def test_sharded_metrics_breakdown_survives_the_tier(self, world_a):
        """Enabling ingest_feeds must not drop the per-shard view."""
        world, snapshot, elements = world_a
        detector = make_kepler(
            world, KeplerParams(ingest_feeds=2, shards=3), False
        )
        try:
            detector.prime(snapshot)
            detector.process(elements[: len(elements) // 4])
            snap = detector.metrics.snapshot()
            assert len(snap["shards"]) == 3
        finally:
            detector.close()

    def test_failed_feed_worker_poisons_the_tier(self):
        """A worker failure surfaces, discards its run, poisons the tier."""
        from repro.ingest import IngestTier

        class NullSink:
            def feed_released(self, payloads, wired):
                return []

            def feed_prime(self, element):
                return []

            def flush(self):
                return []

        def broken_source():
            yield _element(1.0, "rrc00", "10.0.0.0/24")
            raise OSError("collector session lost")

        healthy = [_element(t, "rrc01", "10.1.0.0/24") for t in (2.0, 3.0)]
        tier = IngestTier(NullSink(), feeds=2, fork_feeds=False)
        with pytest.raises(RuntimeError, match="feed worker failed"):
            tier.process_feeds([broken_source(), healthy])
        # The abandoned run's buffered entries never leak downstream,
        # its workers are joined (nothing still mutates the shared
        # admission counters), and the tier refuses to resume over
        # the hole in the stream.
        assert tier.merge.drained
        import threading

        assert not [
            t for t in threading.enumerate() if t.name.startswith("kepler-feed")
        ]
        with pytest.raises(RuntimeError, match="aborted"):
            tier.feed_many(healthy)
        with pytest.raises(RuntimeError, match="aborted"):
            tier.process_feeds([healthy])


# ----------------------------------------------------------------------
# Layout-free checkpoints
# ----------------------------------------------------------------------
class TestIngestCheckpoint:
    def _strip_timings(self, doc: dict) -> dict:
        metrics = doc["pipeline"]["metrics"]
        metrics["stages"] = [
            [name, fed, emitted]
            for name, fed, emitted, _ in metrics["stages"]
        ]
        bins = metrics["bins"]
        bins.pop("total_latency_s"), bins.pop("max_latency_s")
        return doc

    def test_tier_document_equals_linear_document(self, world_a):
        """The ingest section never records the feed layout."""
        world, snapshot, elements = world_a
        cut = len(elements) // 2
        docs = []
        for params in (KeplerParams(), KeplerParams(ingest_feeds=3)):
            detector = make_kepler(world, params, False)
            try:
                detector.prime(snapshot)
                detector.process(elements[:cut])
                docs.append(detector.snapshot())
            finally:
                detector.close()
        linear_doc, tier_doc = (self._strip_timings(d) for d in docs)
        assert json.dumps(tier_doc, sort_keys=True) == json.dumps(
            linear_doc, sort_keys=True
        )

    def test_snapshot_under_tier_is_idempotent(self, world_a):
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(ingest_feeds=2), False)
        try:
            detector.prime(snapshot)
            detector.process(elements[: len(elements) // 2])
            first = json.dumps(detector.snapshot(), sort_keys=True)
            second = json.dumps(detector.snapshot(), sort_keys=True)
            assert first == second
        finally:
            detector.close()

    @pytest.mark.parametrize(
        "writer, reader",
        [
            (KeplerParams(ingest_feeds=3), KeplerParams()),
            (KeplerParams(), KeplerParams(ingest_feeds=4)),
            (
                KeplerParams(ingest_feeds=2),
                KeplerParams(ingest_feeds=3, shards=3),
            ),
        ],
        ids=["tier->driver", "driver->tier", "tier->tier+shards"],
    )
    def test_restores_into_any_ingest_layout(self, world_a, writer, reader):
        world, snapshot, elements = world_a
        baseline = full_run(world_a, KeplerParams(), True)
        cut = len(elements) // 3

        first = make_kepler(world, writer, True)
        try:
            first.prime(snapshot)
            first.process(elements[:cut])
            blob = json.dumps(first.snapshot())
        finally:
            first.close()

        second = make_kepler(world, reader, True)
        try:
            second.restore(json.loads(blob))
            second.process(elements[cut:])
            second.finalize(end_time=END_TIME)
            assert observed(second) == baseline
        finally:
            second.close()

    @needs_fork
    def test_shard_process_tier_snapshot_restores_into_driver(self, world_b):
        world, snapshot, elements = world_b
        baseline = full_run(world_b, KeplerParams(), False)
        cut = len(elements) // 2

        first = make_kepler(
            world,
            KeplerParams(
                ingest_feeds=2, shard_processes=2, process_batch=256
            ),
            False,
        )
        try:
            first.prime(snapshot)
            first.process(elements[:cut])
            blob = json.dumps(first.snapshot())
        finally:
            first.close()

        second = make_kepler(world, KeplerParams(), False)
        try:
            second.restore(json.loads(blob))
            second.process(elements[cut:])
            second.finalize(end_time=END_TIME)
            assert observed(second) == baseline
        finally:
            second.close()

    def test_cut_between_collector_source_runs(self, world_a):
        """Snapshot between process_feeds runs resumes byte-identically."""
        world, snapshot, elements = world_a
        baseline = full_run(world_a, KeplerParams(), False)
        cut = len(elements) // 2

        def sources(part):
            return split_by_collector(part)

        first = make_kepler(world, KeplerParams(ingest_feeds=3), False)
        try:
            first.prime(snapshot)
            first.process_feeds(sources(elements[:cut]))
            blob = json.dumps(first.snapshot())
        finally:
            first.close()

        second = make_kepler(world, KeplerParams(ingest_feeds=2), False)
        try:
            second.restore(json.loads(blob))
            second.process_feeds(sources(elements[cut:]))
            second.finalize(end_time=END_TIME)
            assert observed(second) == baseline
        finally:
            second.close()
