"""Tests for the topology substrate and its noisy exports."""

from __future__ import annotations

import pytest

from repro.bgp.communities import Community
from repro.topology.builder import WorldParams, build_topology
from repro.topology.communities import (
    CommunityScheme,
    CommunityTag,
    RouteServerScheme,
    TagKind,
)
from repro.topology.entities import ASTier, Topology
from repro.topology.sources import export_datacentermap, export_peeringdb


@pytest.fixture(scope="module")
def topo() -> Topology:
    return build_topology(WorldParams(seed=3))


class TestBuilderInvariants:
    def test_validates(self, topo):
        topo.validate()  # raises on violation

    def test_flagship_infrastructure_present(self, topo):
        for fac_id in ("sara-ams", "th-north", "th-east", "tc-hex89", "eqx-fr5"):
            assert fac_id in topo.facilities
        for ixp_id in ("ams-ix", "linx", "de-cix"):
            assert ixp_id in topo.ixps

    def test_amsix_fabric_includes_sara(self, topo):
        assert "sara-ams" in topo.ixps["ams-ix"].facility_ids

    def test_tier1_clique(self, topo):
        tier1 = [a for a, r in topo.ases.items() if r.tier is ASTier.TIER1]
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                assert frozenset((a, b)) in topo.peers

    def test_every_nontier1_has_provider(self, topo):
        for asn, rec in topo.ases.items():
            if rec.tier is not ASTier.TIER1:
                assert topo.providers[asn], f"AS{asn} has no provider"

    def test_provider_customer_share_facility(self, topo):
        # The builder guarantees a physical realisation for every
        # transit relationship.
        for asn, providers in topo.providers.items():
            for prov in providers:
                assert topo.pnis.get(frozenset((asn, prov))), (
                    f"transit AS{asn}->AS{prov} has no PNI"
                )

    def test_pnis_at_common_facilities(self, topo):
        for pair, facs in topo.pnis.items():
            a, b = sorted(pair)
            for fac_id in facs:
                assert fac_id in topo.as_facilities[a]
                assert fac_id in topo.as_facilities[b]

    def test_ixp_ports_are_on_fabric(self, topo):
        for (ixp_id, asn), port in topo.ixp_ports.items():
            assert port.facility_id in topo.ixps[ixp_id].facility_ids

    def test_remote_peering_rate_in_range(self, topo):
        ports = list(topo.ixp_ports.values())
        remote = sum(1 for p in ports if p.remote)
        assert 0.05 <= remote / len(ports) <= 0.35

    def test_local_members_are_tenants_of_port_building(self, topo):
        for (ixp_id, asn), port in topo.ixp_ports.items():
            if not port.remote:
                assert port.facility_id in topo.as_facilities[asn]

    def test_remote_members_have_resellers(self, topo):
        for port in topo.ixp_ports.values():
            if port.remote:
                assert port.reseller is not None

    def test_prefix_uniqueness(self, topo):
        seen: set[str] = set()
        for rec in topo.ases.values():
            for prefix in rec.prefixes_v4 + rec.prefixes_v6:
                assert prefix not in seen
                seen.add(prefix)

    def test_two_tier1s_without_communities(self, topo):
        tier1 = [r for r in topo.ases.values() if r.tier is ASTier.TIER1]
        non_users = [r for r in tier1 if not r.uses_communities]
        assert 1 <= len(non_users) <= 2

    def test_deterministic_for_seed(self):
        a = build_topology(WorldParams(seed=11))
        b = build_topology(WorldParams(seed=11))
        assert sorted(a.ases) == sorted(b.ases)
        assert a.pnis == b.pnis
        assert {k: v for k, v in a.ixp_members.items()} == b.ixp_members

    def test_different_seeds_differ(self):
        a = build_topology(WorldParams(seed=11))
        b = build_topology(WorldParams(seed=12))
        assert a.pnis != b.pnis

    def test_continental_skew_matches_table1(self, topo):
        by_cont: dict[str, int] = {}
        for fac in topo.facilities.values():
            by_cont[fac.city.continent] = by_cont.get(fac.city.continent, 0) + 1
        assert by_cont["EU"] > by_cont["NA"] > by_cont.get("AF", 0)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            WorldParams(n_tier1=1)
        with pytest.raises(ValueError):
            WorldParams(remote_peering_rate=1.5)


class TestCommunityScheme:
    def test_overlapping_values_rejected(self):
        with pytest.raises(ValueError):
            CommunityScheme(
                asn=1,
                ingress={5: CommunityTag(TagKind.CITY, "London")},
                outbound={5: "announce"},
            )

    def test_value_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CommunityScheme(
                asn=1, ingress={70000: CommunityTag(TagKind.CITY, "London")}
            )

    def test_community_for_lookup(self):
        scheme = CommunityScheme(
            asn=7, ingress={42: CommunityTag(TagKind.FACILITY, "f1")}
        )
        assert scheme.community_for(TagKind.FACILITY, "f1") == Community(7, 42)
        assert scheme.community_for(TagKind.FACILITY, "f2") is None

    def test_tag_of_foreign_community_none(self):
        scheme = CommunityScheme(
            asn=7, ingress={42: CommunityTag(TagKind.CITY, "Paris")}
        )
        assert scheme.tag_of(Community(8, 42)) is None
        tag = scheme.tag_of(Community(7, 42))
        assert tag is not None and tag.target_id == "Paris"

    def test_route_server_scheme_matches_by_asn(self):
        rs = RouteServerScheme(ixp_id="x", rs_asn=59000)
        assert rs.matches(Community(59000, 123))
        assert not rs.matches(Community(59001, 0))
        assert rs.marker().asn == 59000

    def test_granularities(self):
        scheme = CommunityScheme(
            asn=7,
            ingress={
                1: CommunityTag(TagKind.CITY, "Paris"),
                2: CommunityTag(TagKind.IXP, "ix"),
            },
        )
        assert scheme.granularities() == {TagKind.CITY, TagKind.IXP}


class TestTopologyAccessors:
    def test_common_facilities(self, topo):
        found_any = False
        for pair in list(topo.pnis)[:20]:
            a, b = sorted(pair)
            common = topo.common_facilities(a, b)
            assert topo.pnis[pair] <= common
            found_any = True
        assert found_any

    def test_siblings_share_org(self, topo):
        for asn in list(topo.ases)[:50]:
            sibs = topo.siblings(asn)
            assert asn in sibs
            org = topo.ases[asn].org_id
            for s in sibs:
                assert topo.ases[s].org_id == org

    def test_ixps_at_facility_consistent(self, topo):
        for ixp_id, ixp in topo.ixps.items():
            for fac_id in ixp.facility_ids:
                assert ixp_id in topo.ixps_at_facility(fac_id)

    def test_customers_inverse_of_providers(self, topo):
        for asn, providers in topo.providers.items():
            for prov in providers:
                assert asn in topo.customers(prov)


class TestExports:
    def test_peeringdb_more_complete_than_dcm(self, topo):
        fac_pdb, ixp_pdb = export_peeringdb(topo, seed=3)
        fac_dcm, ixp_dcm = export_datacentermap(topo, seed=3)
        assert len(fac_pdb) > len(fac_dcm)
        assert len(ixp_pdb) >= len(ixp_dcm)

    def test_postcodes_preserved_for_merging(self, topo):
        fac_pdb, _ = export_peeringdb(topo, seed=3)
        for record in fac_pdb:
            truth = topo.facilities[record.fac_id_hint]
            assert record.postcode == truth.address.postcode
            assert record.country == truth.address.country

    def test_tenant_lists_are_subsets(self, topo):
        fac_pdb, _ = export_peeringdb(topo, seed=3)
        for record in fac_pdb:
            truth = topo.facility_tenants[record.fac_id_hint]
            assert set(record.tenants) <= truth

    def test_ixp_websites_stable_across_sources(self, topo):
        _, ixp_pdb = export_peeringdb(topo, seed=3)
        _, ixp_dcm = export_datacentermap(topo, seed=3)
        pdb_sites = {r.ixp_id_hint: r.website for r in ixp_pdb}
        for record in ixp_dcm:
            assert pdb_sites.get(record.ixp_id_hint, record.website) == record.website

    def test_exports_deterministic(self, topo):
        a = export_peeringdb(topo, seed=5)
        b = export_peeringdb(topo, seed=5)
        assert a == b
