"""End-to-end shard-process runtime: no singleton on the hot path.

The shard-process runtime (`repro/pipeline/parallel.py`,
``KeplerParams(shard_processes=N)``) runs a complete
tagging -> monitor-partition -> classification -> localisation ->
validation -> record chain in every worker process, with the driver
keeping only ingest, the probe cache and the per-bin cross-shard
syncs.  It must be a pure execution detail:

* records, signal log and reject list byte-identical to the linear
  singleton chain on two scenario worlds (with and without a
  data-plane validator);
* the probe cache's at-most-once-per-(PoP, bin) invariant preserved
  exactly (probe counts match the linear chain);
* a mid-stream checkpoint composed by the shard workers restores into
  *any* runtime — singleton, thread-sharded, shard-process — and
  finishes the stream byte-identically, and vice versa.
"""

from __future__ import annotations

import json

import pytest

from test_pipeline_equivalence import (
    FIRST_WORLD,
    SECOND_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro.core.kepler import Kepler, KeplerParams
from repro.pipeline import fork_available
from repro.scenarios import World, build_world

pytestmark = pytest.mark.skipif(
    not fork_available(),
    reason="shard-process runtime requires the fork start method",
)

END_TIME = 80_000.0
#: Small IPC batches so mid-stream cuts land inside shipped batches.
SHARDPROC = dict(shard_processes=3, process_batch=128)


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def world_b() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=SECOND_WORLD.seed, world_params=SECOND_WORLD)
    )


def make_kepler(
    world: World, params: KeplerParams, with_validator: bool
) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator() if with_validator else None,
    )


def observed(detector: Kepler) -> tuple[list, list, list, list]:
    return (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
        # The raw OutageSignal stream, exactly as the monitor emitted
        # it (the per-bin log preserves emission order and the full
        # signal payloads): the partial-signal merge must be
        # byte-identical, not merely classification-equivalent.
        [tuple(c.signals) for c in detector.signal_log],
        [(c.pop, c.bin_start) for c in detector.rejected],
    )


def full_run(
    replay: tuple[World, list, list],
    params: KeplerParams,
    with_validator: bool,
) -> tuple[list, list, list]:
    world, snapshot, elements = replay
    detector = make_kepler(world, params, with_validator)
    try:
        detector.prime(snapshot)
        detector.process(elements)
        detector.finalize(end_time=END_TIME)
        return observed(detector)
    finally:
        detector.close()


class TestDeterminism:
    def test_world_a_with_dataplane(self, world_a):
        linear = full_run(world_a, KeplerParams(), True)
        assert linear[0], "scenario produced no records to compare"
        shardproc = full_run(world_a, KeplerParams(**SHARDPROC), True)
        assert shardproc == linear

    def test_world_b_control_plane(self, world_b):
        linear = full_run(world_b, KeplerParams(), False)
        assert linear[0], "scenario produced no records to compare"
        shardproc = full_run(world_b, KeplerParams(**SHARDPROC), False)
        assert shardproc == linear

    def test_probe_cache_at_most_once_preserved(self, world_a):
        """Worker probes round-trip through one driver cache: probe
        counts (and therefore platform cost) match the linear chain."""
        world, snapshot, elements = world_a
        probes = []
        for params in (KeplerParams(), KeplerParams(**SHARDPROC)):
            detector = make_kepler(world, params, True)
            try:
                detector.prime(snapshot)
                detector.process(elements)
                detector.finalize(end_time=END_TIME)
                probes.append(
                    (detector.stages.cache.probes, detector.stages.cache.hits)
                )
            finally:
                detector.close()
        assert probes[0] == probes[1]


class TestCheckpointInterchange:
    def test_shard_process_checkpoint_restores_into_any_runtime(self, world_a):
        """Snapshot under the shard-process runtime -> singleton,
        thread-sharded and shard-process detectors all resume to the
        same byte-identical output."""
        world, snapshot, elements = world_a
        baseline = full_run(world_a, KeplerParams(), True)
        cut = len(elements) // 3

        first = make_kepler(world, KeplerParams(**SHARDPROC), True)
        try:
            first.prime(snapshot)
            first.process(elements[:cut])
            blob = json.dumps(first.snapshot())
        finally:
            first.close()

        for resume_params in (
            KeplerParams(),
            KeplerParams(shards=4),
            KeplerParams(monitor_partitions=2),
            KeplerParams(**SHARDPROC),
        ):
            second = make_kepler(world, resume_params, True)
            try:
                second.restore(json.loads(blob))
                second.process(elements[cut:])
                second.finalize(end_time=END_TIME)
                assert observed(second) == baseline, resume_params
            finally:
                second.close()

    def test_foreign_checkpoints_restore_into_shard_processes(self, world_a):
        """Linear and thread-sharded snapshots resume under the
        shard-process runtime byte-identically."""
        world, snapshot, elements = world_a
        baseline = full_run(world_a, KeplerParams(), True)
        cut = (2 * len(elements)) // 3

        for write_params in (KeplerParams(), KeplerParams(shards=2)):
            first = make_kepler(world, write_params, True)
            try:
                first.prime(snapshot)
                first.process(elements[:cut])
                blob = json.dumps(first.snapshot())
            finally:
                first.close()
            second = make_kepler(world, KeplerParams(**SHARDPROC), True)
            try:
                second.restore(json.loads(blob))
                second.process(elements[cut:])
                second.finalize(end_time=END_TIME)
                assert observed(second) == baseline, write_params
            finally:
                second.close()

    def test_composed_document_matches_linear(self, world_a):
        """The shard workers compose the linear canonical document:
        stage states, cache and rejects are byte-identical to the
        in-process linear chain's snapshot (timings aside; the
        per-stage metrics split necessarily differs — sharded stages
        sum over workers)."""
        world, snapshot, elements = world_a
        cut = len(elements) // 2
        docs = []
        for params in (KeplerParams(), KeplerParams(**SHARDPROC)):
            detector = make_kepler(world, params, False)
            try:
                detector.prime(snapshot)
                detector.process(elements[:cut])
                docs.append(detector.snapshot())
            finally:
                detector.close()
        linear_doc, shardproc_doc = docs

        def comparable(doc):
            return {
                "format": doc["format"],
                "version": doc["version"],
                "shards": doc["shards"],
                "primed_paths": doc["primed_paths"],
                "rejected": doc["rejected"],
                "cache": doc["cache"],
                "stages": doc["pipeline"]["stages"],
            }

        assert comparable(shardproc_doc) == comparable(linear_doc)

    @pytest.mark.parametrize("frac", [0.13, 0.5, 0.87])
    def test_snapshot_is_idempotent(self, world_a, frac):
        """Back-to-back snapshots with no traffic in between match.

        Regression (found in review): the first snapshot must quiesce
        the workers *before* serialising the driver's shared views —
        with rejects or probe-memo entries still in flight inside sync
        rounds (or elements in the tail buffer), serialising the
        reject list and cache first captured them at an earlier stream
        position than the stage states.  Multiple cut fractions land
        the cut at busy and quiet spots alike.
        """
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(**SHARDPROC), True)
        try:
            detector.prime(snapshot)
            detector.process(elements[: int(frac * len(elements))])
            first = json.dumps(detector.snapshot(), sort_keys=True)
            second = json.dumps(detector.snapshot(), sort_keys=True)
            assert first == second
        finally:
            detector.close()


class TestRuntimeSurface:
    def test_views_reflect_all_fed_elements(self, world_a):
        """Facade reads drain the workers: nothing fed is ever missing."""
        world, snapshot, elements = world_a
        linear = make_kepler(world, KeplerParams(), False)
        shardproc = make_kepler(world, KeplerParams(**SHARDPROC), False)
        try:
            for detector in (linear, shardproc):
                detector.prime(snapshot)
                detector.process(elements[: len(elements) // 2])
            assert shardproc.primed_paths == linear.primed_paths
            assert len(shardproc.signal_log) == len(linear.signal_log)
            assert len(shardproc.records) == len(linear.records)
            assert set(shardproc.open) == set(linear.open)
            metric_names = {
                s["name"] for s in shardproc.metrics.snapshot()["stages"]
            }
            assert {
                "ingest", "tagging", "monitor",
                "classify", "localise", "validate", "record",
            } <= metric_names
        finally:
            linear.close()
            shardproc.close()

    def test_close_is_idempotent_and_snapshot_after_close_raises(
        self, world_a
    ):
        world, _, _ = world_a
        detector = make_kepler(world, KeplerParams(**SHARDPROC), False)
        detector.close()
        detector.close()
        with pytest.raises(RuntimeError, match="closed"):
            detector.snapshot()

    def test_rejects_invalid_configuration(self, world_a):
        world, _, _ = world_a
        with pytest.raises(ValueError, match="shard_processes"):
            make_kepler(
                world,
                KeplerParams(shard_processes=2, process_workers=1),
                False,
            )
        with pytest.raises(ValueError, match="shard_processes"):
            make_kepler(
                world, KeplerParams(shard_processes=2, shards=2), False
            )
