"""The live telemetry plane (repro.telemetry + metrics wiring).

Four layers of guarantees:

* **Primitives**: mergeable log-bucket histograms with bounded
  quantile error and a marshal-safe wire form; the bounded trace
  journal with JSONL and Chrome trace-event exports.
* **Registry wiring**: gauge-name collisions are detected (warn-once)
  instead of silently clobbered; worker gauges are namespaced
  ``w{wid}.*`` on composition; histograms travel only in the metrics
  *sidecar* documents, never in checkpoint ``state_dict`` documents.
* **Exporters**: Prometheus text, JSONL sink and the stdlib HTTP
  endpoint render any snapshot (live or drained).
* **Acceptance**: ``Kepler.metrics_live()`` polled from a thread
  against a *running* ``shard_processes`` + ``ingest_feeds`` detector
  returns per-stage histograms, queue depths and per-feed admission
  counts without a drain barrier — and the run's output stays
  byte-identical to the linear ground truth.
"""

from __future__ import annotations

import json
import logging
import random
import threading
import time
import urllib.request

import pytest

from test_pipeline_equivalence import (
    FIRST_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro import telemetry
from repro.core.kepler import Kepler, KeplerParams
from repro.ingest import split_by_collector
from repro.pipeline import fork_available
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.parallel import (
    _adopt_worker_gauges,
    _load_with_batches,
    _metrics_with_batches,
)
from repro.scenarios import World, build_world
from repro.telemetry import (
    LogHistogram,
    MetricsEndpoint,
    TraceJournal,
    prometheus_text,
    write_jsonl,
)

END_TIME = 80_000.0


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


def make_kepler(world: World, params: KeplerParams) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator(),
    )


def observed(detector: Kepler) -> tuple[list, list, list]:
    return (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
        [(c.pop, c.bin_start) for c in detector.rejected],
    )


# ----------------------------------------------------------------------
# Log-bucket histograms
# ----------------------------------------------------------------------
class TestLogHistogram:
    def test_quantiles_within_bucket_error(self):
        rng = random.Random(7)
        samples = [rng.lognormvariate(mu=8.0, sigma=2.0) for _ in range(5000)]
        hist = LogHistogram()
        hist.record_many(samples)
        samples.sort()
        for q in (0.5, 0.95, 0.99):
            exact = samples[int(q * (len(samples) - 1))]
            approx = hist.quantile(q)
            # 4 sub-buckets per octave: bucket width 2**0.25, so the
            # midpoint is within ~9% of any sample in the bucket.
            assert abs(approx - exact) / exact < 0.10, (q, approx, exact)

    def test_merge_is_lossless(self):
        rng = random.Random(11)
        a, b = LogHistogram(), LogHistogram()
        xs = [rng.uniform(1e-6, 1e3) for _ in range(500)]
        ys = [rng.uniform(1e-6, 1e3) for _ in range(700)]
        a.record_many(xs)
        b.record_many(ys)
        both = LogHistogram()
        both.record_many(xs + ys)
        a.merge(b)
        assert a.counts == both.counts
        assert a.count == both.count == 1200
        assert a.min == both.min and a.max == both.max

    def test_wire_round_trip(self):
        hist = LogHistogram()
        hist.record_many([0.001, 0.01, 0.25, 3.5, 3.5])
        back = LogHistogram.from_wire(hist.to_wire())
        assert back.counts == hist.counts
        assert back.as_dict() == hist.as_dict()
        # The wire form is marshal-safe: flat lists and scalars only.
        import marshal

        assert marshal.loads(marshal.dumps(hist.to_wire())) == hist.to_wire()

    def test_empty_and_disabled(self):
        hist = LogHistogram()
        assert hist.as_dict() == {"count": 0}
        telemetry.set_enabled(False)
        try:
            hist.record(1.0)
            assert hist.count == 0
        finally:
            telemetry.set_enabled(True)
        hist.record(1.0)
        assert hist.count == 1

    def test_nonpositive_values_clamp(self):
        hist = LogHistogram()
        hist.record(0.0)
        hist.record(-5.0)
        assert hist.count == 2
        assert hist.quantile(0.5) > 0


# ----------------------------------------------------------------------
# Trace journal
# ----------------------------------------------------------------------
class TestTraceJournal:
    def test_jsonl_round_trip(self):
        journal = TraceJournal(capacity=16)
        journal.emit("bin_close", "bin", dur_s=0.25, bin=120.0, signals=3)
        journal.emit("worker_failure", "supervise", cause="WorkerDeathError")
        back = TraceJournal.from_jsonl(journal.to_jsonl())
        assert list(back) == list(journal)

    def test_chrome_trace_shapes(self):
        journal = TraceJournal(capacity=16, pid_label="driver")
        journal.emit("sync_round", "sync", dur_s=0.5, ts=100.0, signals=2)
        journal.emit("quarantine", "fault", ts=101.0)
        doc = json.loads(journal.to_chrome_trace())
        span, instant = doc["traceEvents"]
        assert span["ph"] == "X" and span["dur"] == 0.5 * 1e6
        assert span["ts"] == 100.0 * 1e6 and span["pid"] == "driver"
        assert instant["ph"] == "i" and instant["s"] == "p"

    def test_bounded_capacity_counts_drops(self):
        journal = TraceJournal(capacity=8)
        for i in range(12):
            journal.emit("e", seq=i)
        assert len(journal) == 8
        assert journal.dropped == 4
        assert [e["args"]["seq"] for e in journal] == list(range(4, 12))

    def test_disabled_emission_is_noop(self):
        journal = TraceJournal(capacity=8)
        telemetry.set_enabled(False)
        try:
            journal.emit("e")
        finally:
            telemetry.set_enabled(True)
        assert len(journal) == 0


# ----------------------------------------------------------------------
# Gauge collision detection + worker namespacing (satellite)
# ----------------------------------------------------------------------
class TestGaugeCollisions:
    def test_collision_warns_once_and_replaces(self, caplog):
        registry = PipelineMetrics()
        registry.gauge_source("memo_hits", lambda: 1)
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.metrics"):
            registry.gauge_source("memo_hits", lambda: 2)
            registry.gauge_source("memo_hits", lambda: 3)
        warnings = [r for r in caplog.records if "memo_hits" in r.message]
        assert len(warnings) == 1  # warn once per name
        assert registry.gauges()["memo_hits"] == 3  # latest wins

    def test_replace_is_silent(self, caplog):
        registry = PipelineMetrics()
        registry.gauge_source("evictions", lambda: 1)
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.metrics"):
            registry.gauge_source("evictions", lambda: 2, replace=True)
        assert not caplog.records
        assert registry.gauges()["evictions"] == 2

    def test_adopt_gauges_collision_warns(self, caplog):
        a, b = PipelineMetrics(), PipelineMetrics()
        a.gauge_source("intern_size", lambda: 10)
        b.gauge_source("intern_size", lambda: 20)
        composed = PipelineMetrics()
        composed.adopt_gauges(a)
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.metrics"):
            composed.adopt_gauges(b)
        assert any("intern_size" in r.message for r in caplog.records)

    def test_worker_gauges_are_namespaced(self):
        composed = PipelineMetrics()
        composed.gauge_source("memo_hits", lambda: 100)  # driver's own
        _adopt_worker_gauges(composed, 0, {"gauge_values": {"memo_hits": 7}})
        _adopt_worker_gauges(composed, 1, {"gauge_values": {"memo_hits": 9}})
        gauges = composed.gauges()
        assert gauges["memo_hits"] == 100  # driver value untouched
        assert gauges["w0.memo_hits"] == 7
        assert gauges["w1.memo_hits"] == 9


# ----------------------------------------------------------------------
# Checkpoint purity: telemetry never enters state_dict documents
# ----------------------------------------------------------------------
class TestCheckpointPurity:
    def _populated(self) -> PipelineMetrics:
        registry = PipelineMetrics()
        handle = registry.stage("tagging")
        handle.fed = 10
        handle.hist.record_many([100.0, 200.0, 400.0])
        registry.hist("sync_round_s").record(0.01)
        registry.bins.record(0.002, 5, 1)
        registry.trace.emit("bin_close", "bin", dur_s=0.002)
        return registry

    def test_state_dict_carries_no_telemetry(self):
        doc = self._populated().state_dict()
        assert set(doc) == {"stages", "bins"}
        assert doc["stages"] == [["tagging", 10, 0, 0.0]]
        assert "hist" not in json.dumps(doc)
        # and it is JSON-stable (checkpoints are json.dumps'd).
        json.dumps(doc, sort_keys=True)

    def test_sidecar_round_trips_hists(self):
        registry = self._populated()
        doc = _metrics_with_batches(registry)
        assert doc["hists"]["stage"]["tagging"][0] == 3  # count
        back = PipelineMetrics()
        _load_with_batches(back, doc)
        assert back.stages["tagging"].hist.count == 3
        assert back.hists["sync_round_s"].count == 1
        assert back.bins.hist.count == 1
        # load_state on the same doc ignores the sidecar keys entirely.
        fresh = PipelineMetrics()
        fresh.load_state(doc)
        assert fresh.stages["tagging"].hist.count == 0

    def test_reset_clears_hists(self):
        registry = self._populated()
        registry.reset()
        assert registry.stages["tagging"].hist.count == 0
        assert all(h.count == 0 for h in registry.hists.values())


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_snapshot() -> dict:
    return {
        "stages": [
            {
                "name": "tagging",
                "fed": 100,
                "emitted": 90,
                "seconds": 1.5,
                "batches": 4,
            }
        ],
        "bins": {"bins_closed": 7, "mean_latency_s": 0.002},
        "recovery": {"restarts": 1, "degraded": False},
        "gauges": {"memo_hits": 42, "w0.memo_hits": 21},
        "hists": {
            "stage_ns.tagging": {
                "count": 3,
                "mean": 200.0,
                "min": 100.0,
                "max": 400.0,
                "p50": 190.0,
                "p95": 380.0,
                "p99": 398.0,
            }
        },
        "depths": {"in[0]": 2, "ret": 0},
        "feeds": {"feed0": {"announcements": 50, "fed": 60}},
    }


class TestExporters:
    def test_prometheus_text(self):
        text = prometheus_text(_sample_snapshot())
        assert 'repro_stage_fed_total{stage="tagging"} 100' in text
        assert "repro_bins_closed_total 7" in text
        assert "repro_recovery_restarts 1" in text
        assert 'repro_gauge{name="w0.memo_hits"} 21' in text
        assert "repro_hist_stage_ns_tagging_count 3" in text
        assert (
            'repro_hist_stage_ns_tagging{quantile="0.99"} 398.0' in text
        )
        assert 'repro_depth{edge="in[0]"} 2' in text
        assert 'repro_feed_announcements{feed="feed0"} 50' in text

    def test_jsonl_sink(self, tmp_path):
        sink = str(tmp_path / "metrics.jsonl")
        write_jsonl(_sample_snapshot(), sink, ts=123.0)
        write_jsonl(_sample_snapshot(), sink, ts=124.0)
        lines = [
            json.loads(line)
            for line in open(sink, encoding="utf-8").read().splitlines()
        ]
        assert [line["ts"] for line in lines] == [123.0, 124.0]
        assert lines[0]["metrics"]["gauges"]["memo_hits"] == 42

    def test_http_endpoint(self):
        journal = TraceJournal(capacity=8)
        journal.emit("bin_close", "bin", dur_s=0.1, ts=50.0)
        with MetricsEndpoint(
            _sample_snapshot, trace_source=lambda: journal
        ) as endpoint:
            prom = urllib.request.urlopen(
                endpoint.url + "/metrics", timeout=5
            )
            assert prom.status == 200
            assert b"repro_bins_closed_total 7" in prom.read()
            raw = urllib.request.urlopen(
                endpoint.url + "/metrics.json", timeout=5
            )
            assert json.load(raw)["gauges"]["memo_hits"] == 42
            trace = urllib.request.urlopen(
                endpoint.url + "/trace", timeout=5
            )
            doc = json.load(trace)
            assert doc["traceEvents"][0]["name"] == "bin_close"


# ----------------------------------------------------------------------
# Acceptance: live sampling of a running multiprocess detector
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not fork_available(),
    reason="the live-sampling acceptance targets the fork-based runtimes",
)
class TestMetricsLive:
    def test_running_shard_processes_with_ingest_feeds(self, world_a):
        world, snapshot, elements = world_a
        telemetry.set_live_interval(0.0)  # frame on every exchange
        try:
            base = make_kepler(world, KeplerParams())
            base.prime(snapshot)
            base.process(elements)
            base.finalize(end_time=END_TIME)
            expected = observed(base)

            detector = make_kepler(
                world,
                KeplerParams(
                    ingest_feeds=2, shard_processes=2, process_batch=256
                ),
            )
            samples: list[dict] = []
            errors: list[BaseException] = []
            stop = threading.Event()

            def poll() -> None:
                while not stop.is_set():
                    try:
                        samples.append(detector.metrics_live())
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return
                    time.sleep(0.005)

            poller = threading.Thread(target=poll, daemon=True)
            try:
                detector.prime(snapshot)
                poller.start()
                detector.process_feeds(split_by_collector(elements))
                detector.finalize(end_time=END_TIME)
            finally:
                stop.set()
                poller.join(timeout=10)
            got = observed(detector)
            detector.close()

            assert not errors, errors[:1]
            assert got == expected  # sampling perturbed nothing
            assert len(samples) > 3
            # Mid-run samples carry the live sections without a drain.
            final = samples[-1]
            assert final["live"]["workers"] == 2
            assert set(final["feeds"]) == {"feed0", "feed1"}
            hists = final["hists"]
            for name in ("stage_ns.tagging", "stage_ns.monitor",
                         "stage_ns.record", "sync_round_s"):
                assert {"p50", "p95", "p99"} <= set(hists[name]), name
            assert any("ret" in s["depths"] for s in samples)
            # Every sample is a JSON-serialisable export target.
            prometheus_text(final)
            json.dumps(final, sort_keys=True)
        finally:
            telemetry.set_live_interval(telemetry.DEFAULT_LIVE_INTERVAL_S)

    def test_process_workers_live_view(self, world_a):
        world, snapshot, elements = world_a
        telemetry.set_live_interval(0.0)
        try:
            detector = make_kepler(
                world, KeplerParams(process_workers=2, process_batch=256)
            )
            detector.prime(snapshot)
            detector.process(elements)
            snap = detector.metrics_live()
            detector.finalize(end_time=END_TIME)
            detector.close()
            assert snap["live"]["workers"] == 2
            assert "hists" in snap and snap["hists"]
        finally:
            telemetry.set_live_interval(telemetry.DEFAULT_LIVE_INTERVAL_S)
