"""Unit tests for the monitoring module (Section 4.2 semantics)."""

from __future__ import annotations

import pytest

from repro.bgp.messages import BGPStateMessage, ElemType, SessionState
from repro.core.input import PoPTag, TaggedPath
from repro.core.monitor import MonitorParams, OutageMonitor
from repro.docmine.dictionary import PoP, PoPKind

POP_F = PoP(PoPKind.FACILITY, "f1")
POP_C = PoP(PoPKind.CITY, "London")


def tagged(key, time, pops=(POP_F,), near=10, far=30, withdraw=False, path=(1, 10, 30)):
    tags = tuple(PoPTag(pop=p, near_asn=near, far_asn=far) for p in pops)
    return TaggedPath(
        key=key,
        time=time,
        elem_type=ElemType.WITHDRAWAL if withdraw else ElemType.ANNOUNCEMENT,
        as_path=() if withdraw else tuple(path),
        tags=() if withdraw else tags,
        afi=4,
    )


def key(i: int):
    return ("rrc00", 100, f"10.0.{i}.0/24")


def primed_monitor(n_paths=10, t_fail=0.10):
    monitor = OutageMonitor(MonitorParams(t_fail=t_fail))
    for i in range(n_paths):
        monitor.prime(tagged(key(i), time=0.0))
    return monitor


class TestBaseline:
    def test_prime_installs_baseline(self):
        monitor = primed_monitor(5)
        assert monitor.baseline_size(POP_F) == 5

    def test_baseline_links_exposed(self):
        monitor = primed_monitor(3)
        assert monitor.baseline_links(POP_F) == {(10, 30)}
        assert monitor.baseline_far_ases(POP_F) == {30}

    def test_pending_promotion_after_stable_window(self):
        params = MonitorParams(stable_window_s=120.0, bin_interval_s=60.0)
        monitor = OutageMonitor(params)
        monitor.observe(tagged(key(1), time=10.0))
        assert monitor.baseline_size(POP_F) == 0
        # Advance past the stable window with later updates.
        monitor.observe(tagged(key(1), time=70.0))
        monitor.observe(tagged(key(1), time=200.0))
        assert monitor.baseline_size(POP_F) == 1

    def test_tag_flap_resets_pending(self):
        params = MonitorParams(stable_window_s=120.0, bin_interval_s=60.0)
        monitor = OutageMonitor(params)
        monitor.observe(tagged(key(1), time=10.0))
        # Tag disappears: candidate resets.
        monitor.observe(tagged(key(1), time=50.0, pops=()))
        monitor.observe(tagged(key(1), time=130.0))
        monitor.observe(tagged(key(1), time=140.0))
        # Window restarted at t=130: not yet stable at t=200.
        monitor.observe(tagged(key(1), time=200.0))
        assert monitor.baseline_size(POP_F) == 0


class TestDivergence:
    def test_withdrawal_raises_signal(self):
        monitor = primed_monitor(10)
        for i in range(3):
            monitor.observe(tagged(key(i), time=10.0, withdraw=True))
        signals = monitor.close_bin()
        # One signal per involved AS: near-end 10 and far-end 30.
        assert {s.near_asn for s in signals} == {10, 30}
        for signal in signals:
            assert signal.pop == POP_F
            assert signal.diverted_paths == 3
            assert signal.baseline_paths == 10

    def test_community_change_is_implicit_withdrawal(self):
        monitor = primed_monitor(10)
        # Same AS path, tag for a different PoP: divergence for POP_F.
        other = PoP(PoPKind.FACILITY, "f2")
        for i in range(2):
            monitor.observe(tagged(key(i), time=10.0, pops=(other,)))
        signals = monitor.close_bin()
        assert signals and signals[0].pop == POP_F

    def test_as_path_change_keeping_tag_is_not_divergence(self):
        monitor = primed_monitor(10)
        monitor.observe(tagged(key(0), time=10.0, path=(1, 2, 10, 30)))
        assert monitor.close_bin() == []

    def test_below_threshold_no_signal(self):
        monitor = primed_monitor(20, t_fail=0.25)
        monitor.observe(tagged(key(0), time=10.0, withdraw=True))
        assert monitor.close_bin() == []

    def test_per_as_grouping_catches_partial_outage(self):
        # 100 paths of a big AS (near=10) plus 5 of a small AS (near=77).
        monitor = OutageMonitor(MonitorParams(t_fail=0.10))
        for i in range(100):
            monitor.prime(tagged(key(i), time=0.0, near=10))
        small_keys = [("rrc00", 100, f"10.9.{i}.0/24") for i in range(5)]
        for k in small_keys:
            monitor.prime(tagged(k, time=0.0, near=77))
        # All of the small AS's paths divert: 5/105 < Tfail overall,
        # but 5/5 for AS77 (the false-negative case of Section 4.2).
        for k in small_keys:
            monitor.observe(tagged(k, time=10.0, withdraw=True))
        signals = monitor.close_bin()
        assert len(signals) == 1
        assert signals[0].near_asn == 77

    def test_diverted_paths_removed_from_baseline(self):
        monitor = primed_monitor(10)
        monitor.observe(tagged(key(0), time=10.0, withdraw=True))
        monitor.close_bin()
        assert monitor.baseline_size(POP_F) == 9

    def test_signal_carries_affected_links(self):
        monitor = primed_monitor(5)
        monitor.observe(tagged(key(0), time=10.0, withdraw=True))
        signals = monitor.close_bin()
        assert signals[0].links == frozenset({(10, 30)})

    def test_multiple_bins_advance(self):
        monitor = primed_monitor(10)
        monitor.observe(tagged(key(0), time=10.0, withdraw=True))
        # An element 3 bins later closes the open bins in order.
        signals = monitor.observe(tagged(key(1), time=200.0))
        assert {s.near_asn for s in signals} == {10, 30}
        assert monitor.bins_processed >= 1


class TestFeedGaps:
    def _loss(self, time):
        return BGPStateMessage(
            time=time,
            collector="rrc00",
            peer_asn=100,
            old_state=SessionState.ESTABLISHED,
            new_state=SessionState.IDLE,
        )

    def _recovery(self, time):
        return BGPStateMessage(
            time=time,
            collector="rrc00",
            peer_asn=100,
            old_state=SessionState.IDLE,
            new_state=SessionState.ESTABLISHED,
        )

    def test_gapped_peer_paths_not_counted(self):
        monitor = primed_monitor(10)
        monitor.observe_state(self._loss(5.0))
        for i in range(10):
            monitor.observe(tagged(key(i), time=10.0, withdraw=True))
        assert monitor.close_bin() == []

    def test_recovery_resumes_monitoring(self):
        monitor = primed_monitor(10)
        monitor.observe_state(self._loss(5.0))
        monitor.observe_state(self._recovery(6.0))
        for i in range(5):
            monitor.observe(tagged(key(i), time=10.0, withdraw=True))
        assert monitor.close_bin()


class TestReturnTracking:
    def test_fraction_returned(self):
        monitor = primed_monitor(4)
        keys = {key(i) for i in range(4)}
        monitor.start_tracking(POP_F, keys)
        assert monitor.returned_fraction(POP_F) == 0.0
        monitor.observe(tagged(key(0), time=10.0))
        monitor.observe(tagged(key(1), time=11.0))
        assert monitor.returned_fraction(POP_F) == pytest.approx(0.5)

    def test_oscillation_unreturns(self):
        monitor = primed_monitor(2)
        monitor.start_tracking(POP_F, {key(0), key(1)})
        monitor.observe(tagged(key(0), time=10.0))
        monitor.observe(tagged(key(0), time=20.0, withdraw=True))
        assert monitor.returned_fraction(POP_F) == 0.0

    def test_stop_tracking(self):
        monitor = primed_monitor(2)
        monitor.start_tracking(POP_F, {key(0)})
        monitor.stop_tracking(POP_F)
        assert monitor.returned_fraction(POP_F) is None

    def test_last_diverted_exposed_for_tracking(self):
        monitor = primed_monitor(5)
        monitor.observe(tagged(key(0), time=10.0, withdraw=True))
        monitor.close_bin()
        assert monitor.last_diverted.get(POP_F) == {key(0)}


class TestParams:
    def test_invalid_bin_interval(self):
        with pytest.raises(ValueError):
            MonitorParams(bin_interval_s=0.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            MonitorParams(t_fail=0.0)
        with pytest.raises(ValueError):
            MonitorParams(t_fail=1.5)


class TestEmissionOrder:
    """close_bin's emission order is an explicit, documented contract:
    signals sort under signal_sort_key — (PoP kind, PoP id, AS) —
    regardless of baseline/divergence insertion order.  The
    partitioned monitor's partial-signal merge relies on it."""

    POPS = [
        PoP(PoPKind.IXP, "zz-ix"),
        PoP(PoPKind.FACILITY, "f9"),
        PoP(PoPKind.CITY, "Vienna"),
        PoP(PoPKind.FACILITY, "f10"),
        PoP(PoPKind.IXP, "aa-ix"),
        PoP(PoPKind.CITY, "Amsterdam"),
    ]

    def _diverted_monitor(self):
        """Baselines and divergences installed in adversarial order:
        PoPs reversed, higher AS numbers first."""
        monitor = OutageMonitor(MonitorParams())
        keys = []
        for p, pop in enumerate(reversed(self.POPS)):
            for near in (97, 13, 55):
                for i in range(3):
                    k = ("rrc00", 100, f"10.{p}.{near}.{i}/32")
                    keys.append(k)
                    monitor.prime(
                        tagged(k, time=0.0, pops=(pop,), near=near, far=near + 1000)
                    )
        for k in reversed(keys):
            monitor.observe(tagged(k, time=10.0, withdraw=True))
        return monitor

    def test_signals_sorted_under_documented_key(self):
        from repro.core.monitor import signal_sort_key

        signals = self._diverted_monitor().close_bin()
        assert len(signals) >= len(self.POPS)
        assert [signal_sort_key(s) for s in signals] == sorted(
            signal_sort_key(s) for s in signals
        )
        # The key is exactly (kind value, pop id, AS) — pin it so a
        # refactor cannot silently change the contract.
        first = signals[0]
        assert signal_sort_key(first) == (
            first.pop.kind.value,
            first.pop.pop_id,
            first.near_asn,
        )

    def test_order_is_insertion_independent(self):
        forward = self._diverted_monitor().close_bin()
        monitor = OutageMonitor(MonitorParams())
        for p, pop in enumerate(self.POPS):
            for near in (13, 55, 97):
                for i in range(3):
                    monitor.prime(
                        tagged(
                            ("rrc00", 100, f"10.{len(self.POPS) - 1 - p}.{near}.{i}/32"),
                            time=0.0,
                            pops=(pop,),
                            near=near,
                            far=near + 1000,
                        )
                    )
        for p in range(len(self.POPS)):
            for near in (13, 55, 97):
                for i in range(3):
                    monitor.observe(
                        tagged(
                            ("rrc00", 100, f"10.{p}.{near}.{i}/32"),
                            time=10.0,
                            withdraw=True,
                        )
                    )
        assert monitor.close_bin() == forward


class TestMonitorPartitions:
    """PartitionedMonitor(n) behaves exactly like the singleton."""

    def _churn(self, monitor):
        out = []
        for i in range(12):
            monitor.prime(
                tagged(key(i), time=0.0, pops=(POP_F, POP_C), near=10 + i % 3)
            )
        for i in range(6):
            out.extend(
                monitor.observe(tagged(key(i), time=10.0 + i, withdraw=True))
            )
        out.extend(monitor.close_bin())
        for i in range(6):
            out.extend(monitor.observe(tagged(key(i), time=70.0 + i)))
        out.extend(monitor.close_bin())
        return out

    @pytest.mark.parametrize("partitions", [2, 3, 5])
    def test_partitioned_signals_match_singleton(self, partitions):
        from repro.core.monitor import PartitionedMonitor

        single = self._churn(OutageMonitor(MonitorParams()))
        partitioned = self._churn(
            PartitionedMonitor(MonitorParams(), partitions=partitions)
        )
        assert partitioned == single

    def test_partitions_own_disjoint_pop_subsets(self):
        from repro.core.monitor import PartitionedMonitor, partition_of

        monitor = PartitionedMonitor(MonitorParams(), partitions=4)
        for i in range(12):
            monitor.prime(tagged(key(i), time=0.0, pops=(POP_F, POP_C)))
        for part in monitor.partitions:
            for pop in part.baseline:
                assert partition_of(pop, 4) == part.index
        assert monitor.baseline_size(POP_F) == 12
        assert monitor.baseline_size(POP_C) == 12
        assert monitor.total_baseline_entries == 24

    def test_local_coordinator_computes_its_share(self):
        from repro.core.monitor import PartitionedMonitor, partition_of

        full = PartitionedMonitor(MonitorParams(), partitions=3)
        locals_ = [
            PartitionedMonitor(MonitorParams(), partitions=3, local=(w,))
            for w in range(3)
        ]
        monitors = [full, *locals_]
        for i in range(9):
            for m in monitors:
                m.prime(tagged(key(i), time=0.0, pops=(POP_F, POP_C)))
        for i in range(9):
            for m in monitors:
                m.observe(tagged(key(i), time=10.0, withdraw=True))
        merged = []
        for m in locals_:
            merged.extend(m.close_bin())
        from repro.core.monitor import signal_sort_key

        merged.sort(key=signal_sort_key)
        assert merged == full.close_bin()
        for w, m in enumerate(locals_):
            for pop in m.monitored_pops():
                assert partition_of(pop, 3) == w

    def test_invalid_partition_configuration(self):
        from repro.core.monitor import PartitionedMonitor

        with pytest.raises(ValueError):
            PartitionedMonitor(MonitorParams(), partitions=0)
        with pytest.raises(ValueError):
            PartitionedMonitor(MonitorParams(), partitions=2, local=(5,))
