"""End-to-end integration tests: scenario -> stream -> Kepler -> records."""

from __future__ import annotations

import pytest

from repro.core.events import SignalType
from repro.core.kepler import KeplerParams
from repro.core.monitor import MonitorParams
from repro.docmine.dictionary import PoPKind
from repro.routing.events import (
    ASFailure,
    FacilityFailure,
    FacilityRecovery,
    IXPFailure,
    IXPRecovery,
    LinkFailure,
    PartialFacilityFailure,
    PartialFacilityRecovery,
)


def run_kepler(world, events, end=50000.0, params=None, validator=None):
    kepler = world.make_kepler(params=params, validator=validator)
    kepler.prime(world.rib_snapshot(0.0))
    kepler.process(world.run_events(events))
    records = kepler.finalize(end_time=end)
    return kepler, records


def located_truth(world, record):
    if record.located_pop.kind is PoPKind.FACILITY:
        return world.truth_facility_ids(record.located_pop.pop_id)
    if record.located_pop.kind is PoPKind.IXP:
        return world.truth_ixp_ids(record.located_pop.pop_id)
    return set()


class TestFacilityOutageDetection:
    def test_full_outage_detected_and_located(self, fresh_world):
        world = fresh_world
        kepler, records = run_kepler(
            world,
            [(10000.0, FacilityFailure("th-north")),
             (14000.0, FacilityRecovery("th-north"))],
        )
        assert records, "outage not detected"
        hits = [r for r in records if "th-north" in located_truth(world, r)]
        assert hits, f"wrong location: {[r.describe() for r in records]}"

    def test_detection_latency_within_minutes(self, fresh_world):
        world = fresh_world
        _, records = run_kepler(
            world,
            [(10000.0, FacilityFailure("th-north")),
             (14000.0, FacilityRecovery("th-north"))],
        )
        first = min(r.start for r in records)
        # Signals appear within the failure-update jitter + one bin.
        assert 10000.0 - 60.0 <= first <= 10000.0 + 300.0

    def test_duration_tracks_recovery(self, fresh_world):
        world = fresh_world
        _, records = run_kepler(
            world,
            [(10000.0, FacilityFailure("th-north")),
             (14000.0, FacilityRecovery("th-north"))],
        )
        durations = [r.duration_s for r in records if r.duration_s]
        assert durations
        # True outage 4000 s; detected duration within loose envelope
        # (restoration delays legitimately stretch it, Section 6.3).
        assert 3000.0 <= max(durations) <= 16000.0

    def test_no_events_no_records(self, fresh_world):
        _, records = run_kepler(fresh_world, [])
        assert records == []


class TestIXPOutageDetection:
    def test_full_ixp_outage(self, fresh_world):
        world = fresh_world
        kepler, records = run_kepler(
            world,
            [(10000.0, IXPFailure("ams-ix")), (10600.0, IXPRecovery("ams-ix"))],
        )
        hits = [r for r in records if "ams-ix" in located_truth(world, r)]
        assert hits
        assert hits[0].located_pop.kind is PoPKind.IXP

    def test_fabric_building_outage_refined(self, fresh_world):
        world = fresh_world
        # eqx-fr5 hosts part of the DE-CIX fabric: a building failure
        # must localise to the building, not the IXP (Figure 2(b)).
        kepler, records = run_kepler(
            world,
            [(10000.0, FacilityFailure("eqx-fr5")),
             (20000.0, FacilityRecovery("eqx-fr5"))],
        )
        hits = [r for r in records if "eqx-fr5" in located_truth(world, r)]
        assert hits
        assert all(
            "de-cix" not in located_truth(world, r) for r in records
        ), "misattributed to the IXP"


class TestNonInfrastructureEvents:
    def test_as_failure_not_reported_as_pop_outage(self, fresh_world):
        world = fresh_world
        tier1 = sorted(world.topo.ases)[0]
        kepler, records = run_kepler(world, [(10000.0, ASFailure(tier1))])
        assert records == [], [r.describe() for r in records]
        counts = kepler.signal_counts()
        assert counts[SignalType.AS] + counts[SignalType.LINK] > 0

    def test_depeering_not_reported(self, fresh_world):
        world = fresh_world
        pair = sorted(world.topo.peers, key=sorted)[3]
        a, b = sorted(pair)
        _, records = run_kepler(world, [(10000.0, LinkFailure(a, b))])
        assert records == []


class TestPartialOutages:
    def test_partial_outage_detected(self, fresh_world):
        world = fresh_world
        # Hit the busiest building's *active* tenants; a partial outage
        # of idle presences is legitimately invisible (Section 5.2).
        usage: dict[str, set[int]] = {}
        for state in world.engine.routes.values():
            for ic in state.interconnections:
                for fac in {ic.facility_a, ic.facility_b}:
                    usage.setdefault(fac, set()).update((ic.asn_a, ic.asn_b))
        fac_id = max(
            (f for f in usage if world.map_facility_id(f)),
            key=lambda f: len(usage[f] & world.topo.facility_tenants[f]),
        )
        affected = tuple(
            sorted(usage[fac_id] & world.topo.facility_tenants[fac_id])
        )
        assert len(affected) >= 6
        _, records = run_kepler(
            world,
            [(10000.0, PartialFacilityFailure(fac_id, affected)),
             (18000.0, PartialFacilityRecovery(fac_id, affected))],
        )
        hits = [r for r in records if fac_id in located_truth(world, r)]
        assert hits, [r.describe() for r in records]

    def test_tiny_partial_outage_below_pop_rule(self, fresh_world):
        world = fresh_world
        tenants = sorted(world.topo.facility_tenants["eqx-fr5"])[:2]
        kepler, records = run_kepler(
            world,
            [(10000.0, PartialFacilityFailure("eqx-fr5", tuple(tenants)))],
        )
        # Two affected tenants cannot satisfy the 3+3 disjointness rule.
        hits = [r for r in records if "eqx-fr5" in located_truth(world, r)]
        assert len(hits) == 0


class TestOscillationMerging:
    def test_flapping_outages_merge(self, fresh_world):
        world = fresh_world
        events = []
        for i in range(3):
            start = 10000.0 + i * 7200.0  # 2 h apart, < 12 h merge gap
            events.append((start, FacilityFailure("th-north")))
            events.append((start + 1800.0, FacilityRecovery("th-north")))
        _, records = run_kepler(world, events, end=80000.0)
        hits = [r for r in records if "th-north" in located_truth(world, r)]
        assert len(hits) == 1
        assert hits[0].merged_incidents >= 2

    def test_separate_outages_not_merged(self, fresh_world):
        world = fresh_world
        # Spaced beyond the 12 h merge gap AND the 2-day stable window,
        # so the returned paths have re-qualified for the baseline and
        # the second outage is independently detectable.
        second = 10000.0 + 2.5 * 86400.0
        events = [
            (10000.0, FacilityFailure("th-north")),
            (12000.0, FacilityRecovery("th-north")),
            (second, FacilityFailure("th-north")),
            (second + 2000.0, FacilityRecovery("th-north")),
        ]
        _, records = run_kepler(
            world, events, end=second + 50000.0
        )
        hits = [r for r in records if "th-north" in located_truth(world, r)]
        assert len(hits) == 2
        assert all(r.merged_incidents == 1 for r in hits)


class TestAblation:
    def test_investigation_disabled_reports_signal_pops(self, fresh_world):
        world = fresh_world
        params = KeplerParams(enable_investigation=False)
        _, records = run_kepler(
            world,
            [(10000.0, FacilityFailure("th-north")),
             (14000.0, FacilityRecovery("th-north"))],
            params=params,
        )
        assert records
        assert all(r.method == "signal-pop" for r in records)

    def test_higher_threshold_misses_partial_outages(self, fresh_world):
        world = fresh_world
        tenants = sorted(world.topo.facility_tenants["eqx-fr5"])
        slice_ = tuple(tenants[: max(3, len(tenants) // 3)])
        events = [
            (10000.0, PartialFacilityFailure("eqx-fr5", slice_)),
            (18000.0, PartialFacilityRecovery("eqx-fr5", slice_)),
        ]
        # Generate the stream once: the routing behaviour is independent
        # of the detector, and events must stay chronological.
        snapshot = world.rib_snapshot(0.0)
        elements = world.run_events(events)
        results = {}
        for name, t_fail in (("low", 0.05), ("high", 0.6)):
            params = KeplerParams(monitor=MonitorParams(t_fail=t_fail))
            kepler = world.make_kepler(params=params)
            kepler.prime(snapshot)
            kepler.process(elements)
            results[name] = kepler.finalize(end_time=50000.0)
        assert len(results["low"]) >= len(results["high"])


class TestDataPlaneIntegration:
    @pytest.fixture()
    def instrumented(self, fresh_world):
        from repro.traceroute import (
            AddressPlan,
            HopMapper,
            MeasurementPlatform,
            TraceArchive,
            TracerouteSimulator,
            TracerouteValidator,
        )

        world = fresh_world
        plan = AddressPlan(world.topo)
        sim = TracerouteSimulator(world.engine, plan, seed=1)
        platform = MeasurementPlatform(simulator=sim, daily_credits=10**9)
        mapper = HopMapper(
            plan,
            ixp_truth_to_map={
                i: world.map_ixp_id(i)
                for i in world.topo.ixps
                if world.map_ixp_id(i)
            },
            fac_truth_to_map={
                f: world.map_facility_id(f)
                for f in world.topo.facilities
                if world.map_facility_id(f)
            },
        )
        archive = TraceArchive(mapper=mapper)
        targets = sorted(
            a for a, r in world.topo.ases.items() if r.originates
        )[::6]
        archive.collect_weekly(
            platform, targets, start_time=-28 * 86400.0, weeks=4
        )
        validator = TracerouteValidator(
            platform=platform, archive=archive, mapper=mapper
        )
        return world, validator

    def test_validator_confirms_real_outage(self, instrumented):
        world, validator = instrumented
        kepler, records = run_kepler(
            world,
            [(10000.0, FacilityFailure("th-north")),
             (14000.0, FacilityRecovery("th-north"))],
            validator=validator,
        )
        hits = [r for r in records if "th-north" in located_truth(world, r)]
        assert hits
        assert validator.validations > 0
