"""Tests for traceroute, traffic, outage-scenario and analysis substrates."""

from __future__ import annotations

import pytest

from repro.analysis.adoption import AdoptionModel, attrition
from repro.analysis.coverage import (
    continent_coverage,
    dictionary_geo_spread,
    locatable_ases,
    trackability_profile,
)
from repro.analysis.durations import (
    annual_downtime,
    duration_stats,
    uptime_fraction,
)
from repro.analysis.ecdf import ecdf, fraction_at_least, quantile
from repro.core.events import OutageRecord
from repro.docmine.dictionary import PoP, PoPKind
from repro.outages.case_studies import (
    amsix_outage_scenario,
    london_dual_outage_scenario,
)
from repro.outages.history import HistoryParams, generate_history, semester_of
from repro.outages.reports import ReportingModel
from repro.traceroute.addressing import AddressPlan
from repro.traceroute.platform import (
    MeasurementPlatform,
    RateLimitExceeded,
)
from repro.traceroute.simulator import TracerouteSimulator
from repro.traffic.diurnal import diurnal_multiplier
from repro.traffic.matrix import TrafficMatrix


class TestAddressPlan:
    def test_every_member_port_has_lan_address(self, world):
        plan = AddressPlan(world.topo)
        for ixp_id, members in world.topo.ixp_members.items():
            lan = plan.ixp_lan_prefix(ixp_id)
            assert lan is not None
            for asn in members:
                ip = plan.port_ip(ixp_id, asn)
                assert ip is not None
                assert ip.startswith(lan.rsplit(".", 1)[0])

    def test_router_interfaces_resolvable(self, world):
        plan = AddressPlan(world.topo)
        asn = next(iter(world.topo.as_facilities))
        for fac_id in world.topo.as_facilities[asn]:
            ip = plan.router_ip(asn, fac_id)
            assert ip is not None
            info = plan.lookup(ip)
            assert info is not None
            assert info.asn == asn and info.facility_id == fac_id

    def test_deterministic(self, world):
        a = AddressPlan(world.topo)
        b = AddressPlan(world.topo)
        assert a.interface_count() == b.interface_count()


class TestTracerouteSimulator:
    @pytest.fixture()
    def sim(self, fresh_world):
        return TracerouteSimulator(
            fresh_world.engine, AddressPlan(fresh_world.topo), seed=3
        )

    def test_trace_reaches_destination(self, fresh_world, sim):
        origins = [a for a, r in fresh_world.topo.ases.items() if r.originates]
        trace = sim.trace(origins[0], origins[5], 0.0)
        assert trace.reached
        assert trace.hops[-1].asn == origins[5]

    def test_rtt_monotonic_along_path(self, fresh_world, sim):
        origins = [a for a, r in fresh_world.topo.ases.items() if r.originates]
        trace = sim.trace(origins[0], origins[9], 0.0)
        rtts = [h.rtt_ms for h in trace.hops]
        assert rtts == sorted(rtts)

    def test_trace_respects_failure_time(self, fresh_world, sim):
        from repro.routing.events import FacilityFailure, FacilityRecovery

        world = fresh_world
        victim = "th-north"
        world.engine.apply_event(FacilityFailure(victim), 1000.0)
        world.engine.apply_event(FacilityRecovery(victim), 2000.0)
        # Pick a pair whose healthy path crossed the victim facility.
        pair = None
        for (v, o), state in world.engine.healthy.items():
            if any(
                victim in (ic.facility_a, ic.facility_b)
                for ic in state.interconnections
            ):
                pair = (v, o)
                break
        assert pair is not None
        before = sim.trace(pair[0], pair[1], 500.0)
        during = sim.trace(pair[0], pair[1], 1500.0)
        after = sim.trace(pair[0], pair[1], 2500.0)
        assert before.crosses_facility(victim)
        assert not during.crosses_facility(victim)
        assert after.crosses_facility(victim)


class TestPlatform:
    def test_rate_limit_enforced(self, fresh_world):
        sim = TracerouteSimulator(
            fresh_world.engine, AddressPlan(fresh_world.topo)
        )
        platform = MeasurementPlatform(simulator=sim, daily_credits=25)
        probe = platform.probes[0]
        dst = next(
            a for a, r in fresh_world.topo.ases.items() if r.originates
        )
        for _ in range(2):
            platform.traceroute(probe, dst, 0.0)
        with pytest.raises(RateLimitExceeded):
            platform.traceroute(probe, dst, 0.0)

    def test_credits_recover_after_window(self, fresh_world):
        sim = TracerouteSimulator(
            fresh_world.engine, AddressPlan(fresh_world.topo)
        )
        platform = MeasurementPlatform(simulator=sim, daily_credits=25)
        probe = platform.probes[0]
        dst = next(a for a, r in fresh_world.topo.ases.items() if r.originates)
        platform.traceroute(probe, dst, 0.0)
        platform.traceroute(probe, dst, 0.0)
        # A day later the budget is fresh.
        platform.traceroute(probe, dst, 90000.0)


class TestTraffic:
    def test_matrix_total_calibrated(self, small_topo):
        matrix = TrafficMatrix(small_topo, total_gbps=100.0)
        assert matrix.total() == pytest.approx(100.0, rel=1e-6)

    def test_content_sources_more_than_access(self, small_topo):
        matrix = TrafficMatrix(small_topo)
        # AS40 is content, AS30/50 access: content->access demand must
        # on aggregate exceed the reverse.
        c2a = matrix.demand(40, 30) + matrix.demand(40, 50)
        a2c = matrix.demand(30, 40) + matrix.demand(50, 40)
        assert c2a > a2c

    def test_diurnal_mean_near_one(self):
        samples = [diurnal_multiplier(t * 3600.0) for t in range(24)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.02)
        assert max(samples) > 1.2 and min(samples) < 0.8

    def test_demand_zero_for_unknown_pair(self, small_topo):
        matrix = TrafficMatrix(small_topo)
        assert matrix.demand(10, 999) == 0.0


class TestOutageScenarios:
    def test_history_counts(self, world):
        params = HistoryParams(seed=4)
        scenario = generate_history(world.topo, params)
        infra = scenario.infrastructure_truth()
        fac = [t for t in infra if t.kind == "facility"]
        ixp = [t for t in infra if t.kind == "ixp"]
        assert len(fac) >= params.n_facility_outages
        assert len(ixp) == params.n_ixp_outages

    def test_history_duration_distribution(self, world):
        scenario = generate_history(world.topo, HistoryParams(seed=4))
        durations = [t.duration_s for t in scenario.infrastructure_truth()]
        stats = duration_stats(durations)
        # Paper: median ~17 min, ~40 % over an hour.
        assert 8 * 60 <= stats.median_s <= 80 * 60
        assert 0.25 <= stats.over_1h_fraction <= 0.60

    def test_ixp_outages_longer(self, world):
        scenario = generate_history(world.topo, HistoryParams(seed=4))
        infra = scenario.infrastructure_truth()
        fac = [t.duration_s for t in infra if t.kind == "facility"]
        ixp = [t.duration_s for t in infra if t.kind == "ixp"]
        assert quantile(ixp, 0.5) > quantile(fac, 0.5)

    def test_events_sorted_and_paired(self, world):
        scenario = generate_history(world.topo, HistoryParams(seed=4))
        times = [t for t, _ in scenario.timed_events]
        assert times == sorted(times)

    def test_reporting_fraction_matches_paper(self, world):
        scenario = generate_history(world.topo, HistoryParams(seed=4))
        model = ReportingModel(world.topo, seed=4)
        fraction = model.reported_fraction(scenario.truth)
        assert 0.15 <= fraction <= 0.35  # paper: ~24 %

    def test_reporting_biased_to_us_uk(self, world):
        scenario = generate_history(world.topo, HistoryParams(seed=4))
        model = ReportingModel(world.topo, seed=4)
        infra = scenario.infrastructure_truth()
        reports = model.reports_for(infra)
        def is_anglo(t):
            return model._country_of(t) in ("US", "GB")
        anglo_total = sum(1 for t in infra if is_anglo(t))
        anglo_reported = sum(1 for r in reports if is_anglo(r.truth))
        rest_total = len(infra) - anglo_total
        rest_reported = len(reports) - anglo_reported
        assert anglo_total and rest_total
        assert (anglo_reported / anglo_total) > (rest_reported / rest_total)

    def test_semester_binning(self):
        import calendar

        assert semester_of(calendar.timegm((2014, 3, 1, 0, 0, 0))) == "2014H1"
        assert semester_of(calendar.timegm((2014, 9, 1, 0, 0, 0))) == "2014H2"

    def test_case_studies_reference_flagships(self, world):
        ams = amsix_outage_scenario()
        assert ams.truth[0].target_id == "ams-ix"
        london = london_dual_outage_scenario(world.topo)
        targets = {t.target_id for t in london.truth}
        assert {"tc-hex89", "th-north"} <= targets
        kinds = [t.kind for t in london.truth]
        assert "as" in kinds  # the time-B trap


class TestAnalysis:
    def test_ecdf_properties(self):
        points = ecdf([3.0, 1.0, 2.0])
        assert points[0] == (1.0, pytest.approx(1 / 3))
        assert points[-1] == (3.0, pytest.approx(1.0))

    def test_quantile_interpolation(self):
        assert quantile([0.0, 10.0], 0.5) == pytest.approx(5.0)
        assert quantile([5.0], 0.9) == 5.0
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_fraction_at_least(self):
        assert fraction_at_least([1, 2, 3, 4], 3) == 0.5
        assert fraction_at_least([], 3) == 0.0

    def test_duration_stats(self):
        stats = duration_stats([600.0] * 6 + [7200.0] * 4)
        assert stats.over_1h_fraction == pytest.approx(0.4)
        assert stats.median_s == 600.0

    def test_uptime_fraction(self):
        downtime = {"a": 60.0, "b": 10 * 3600.0}
        assert uptime_fraction(downtime, "99.9") == 0.5
        assert uptime_fraction(downtime, "99.999") == 0.5
        assert uptime_fraction({}, "99.9") == 1.0

    def test_annual_downtime_accumulates(self):
        pop = PoP(PoPKind.FACILITY, "x")
        records = [
            OutageRecord(signal_pop=pop, located_pop=pop, start=0.0, end=600.0),
            OutageRecord(signal_pop=pop, located_pop=pop, start=9000.0, end=9600.0),
        ]
        downtime = annual_downtime(records, window_years=2.0)
        assert downtime[str(pop)] == pytest.approx(600.0)

    def test_adoption_model_matches_figure3(self):
        series = AdoptionModel(seed=1).series()
        first, last = series[0], series[-1]
        assert last.unique_asns / first.unique_asns >= 1.8
        assert last.unique_values / first.unique_values >= 2.5
        assert last.unique_values > 40_000
        years = [p.year for p in series]
        assert years == sorted(years)

    def test_attrition_metrics(self):
        old = {(1, 1), (1, 2), (2, 1)}
        new = {(1, 1), (3, 3)}
        visible, inherited = attrition(old, new)
        assert visible == pytest.approx(1 / 3)
        assert inherited == pytest.approx(1 / 2)

    def test_continent_coverage_rows(self, world):
        rows = continent_coverage(world.colo, locatable_ases(world.dictionary))
        by_cont = {r.continent: r for r in rows}
        assert "EU" in by_cont and "NA" in by_cont
        assert by_cont["EU"].all_facilities > by_cont["NA"].all_facilities
        for row in rows:
            assert row.all_facilities >= row.over_5_members >= row.trackable

    def test_trackability_profile_monotone(self, world):
        profile = trackability_profile(
            world.colo, locatable_ases(world.dictionary)
        )
        for _, total, mapped, trackable in profile:
            assert mapped <= total
            assert trackable == (mapped >= 6)

    def test_geo_spread_europe_heavy(self, world):
        spread = dictionary_geo_spread(world.dictionary, world.colo)
        eu = sum(spread.get("EU", {}).values())
        total = sum(sum(v.values()) for v in spread.values())
        assert eu / total >= 0.4
