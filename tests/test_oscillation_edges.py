"""Oscillation and feed-gap edge cases of the record lifecycle (§4.4).

Drives the monitor + RecordStage pair directly with synthetic tagged
paths, pinning down the boundary behaviours:

* a relapse arriving **exactly** at ``merge_gap_s`` after the close is
  still merged (the watch expires only strictly after the gap);
* a fresh PoP-level signal on a watched PoP starts a new incident (the
  watch pop-and-restart path);
* collector feed gaps during an open outage neither fabricate
  divergence signals nor disturb return tracking.
"""

from __future__ import annotations

import pytest

from repro.bgp.messages import BGPStateMessage, ElemType, SessionState
from repro.core.dataplane import NullValidator, ValidationOutcome
from repro.core.events import SignalType
from repro.core.input import PoPTag, TaggedPath
from repro.core.monitor import MonitorParams, OutageMonitor
from repro.core.signals import SignalClassification
from repro.docmine.dictionary import PoP, PoPKind
from repro.pipeline import BinAdvanced, OutageCandidate, RecordStage

POP_F = PoP(PoPKind.FACILITY, "f1")
MERGE_GAP = 100.0


def tagged(key, time, pops=(POP_F,), near=10, far=30, withdraw=False):
    tags = tuple(PoPTag(pop=p, near_asn=near, far_asn=far) for p in pops)
    return TaggedPath(
        key=key,
        time=time,
        elem_type=ElemType.WITHDRAWAL if withdraw else ElemType.ANNOUNCEMENT,
        as_path=() if withdraw else (1, near, far),
        tags=() if withdraw else tags,
        afi=4,
    )


def key(i: int):
    return ("rrc00", 100, f"10.0.{i}.0/24")


def classification(pop=POP_F, bin_start=0.0) -> SignalClassification:
    ases = (1, 2, 3, 4)
    return SignalClassification(
        pop=pop,
        signal_type=SignalType.POP,
        bin_start=bin_start,
        bin_end=bin_start + 60.0,
        near_ases=set(ases),
        far_ases={a + 100 for a in ases},
        links={(a, a + 100) for a in ases},
    )


def candidate(bin_start=0.0) -> OutageCandidate:
    c = classification(bin_start=bin_start)
    return OutageCandidate(
        classification=c,
        located=c.pop,
        method="near-end",
        outcome=ValidationOutcome.INCONCLUSIVE,
    )


def opened_and_closed(n_keys=4, n_return=3):
    """Monitor + stage with one outage opened, then closed at t=120."""
    monitor = OutageMonitor(MonitorParams())
    for i in range(n_keys):
        monitor.prime(tagged(key(i), time=0.0))
    stage = RecordStage(
        monitor, NullValidator(), restore_fraction=0.5, merge_gap_s=MERGE_GAP
    )
    for i in range(n_keys):
        monitor.observe(tagged(key(i), time=10.0, withdraw=True))
    monitor.close_bin()  # last_diverted now holds the diverted keys
    stage.feed(candidate(bin_start=0.0))
    assert POP_F in stage.open
    # Paths return: fraction above the restore threshold.
    for i in range(n_return):
        monitor.observe(tagged(key(i), time=70.0))
    stage.feed(BinAdvanced(now=120.0))
    assert POP_F not in stage.open
    assert POP_F in stage._watch
    return monitor, stage


class TestRelapseAtExactGap:
    def test_relapse_exactly_at_merge_gap_still_merges(self):
        monitor, stage = opened_and_closed()
        # The paths flap back down...
        for i in range(3):
            monitor.observe(tagged(key(i), time=130.0, withdraw=True))
        # ...and the evaluation lands exactly merge_gap_s after close:
        # the watch must still be live (expiry is strictly greater-than).
        stage.feed(BinAdvanced(now=120.0 + MERGE_GAP))
        assert POP_F in stage.open
        assert stage.open[POP_F].start == 120.0 + MERGE_GAP
        assert POP_F not in stage._watch

    def test_watch_expires_strictly_after_gap(self):
        monitor, stage = opened_and_closed()
        for i in range(3):
            monitor.observe(tagged(key(i), time=130.0, withdraw=True))
        stage.feed(BinAdvanced(now=120.0 + MERGE_GAP + 0.5))
        assert POP_F not in stage.open
        assert POP_F not in stage._watch
        # Tracking is released with the watch.
        assert monitor.returned_fraction(POP_F) is None

    def test_relapse_inherits_record_identity(self):
        monitor, stage = opened_and_closed()
        closed = stage.records[-1]
        for i in range(3):
            monitor.observe(tagged(key(i), time=130.0, withdraw=True))
        stage.feed(BinAdvanced(now=180.0))
        relapse = stage.open[POP_F]
        assert relapse.method == closed.method
        assert relapse.affected_ases == closed.affected_ases
        # finalize merges the two into one incident, summed downtime.
        records = stage.finalize(end_time=200.0)
        mine = [r for r in records if r.located_pop == POP_F]
        assert len(mine) == 1
        assert mine[0].merged_incidents == 2


class TestFreshSignalOnWatchedPop:
    def test_fresh_signal_restarts_incident(self):
        monitor, stage = opened_and_closed()
        # A new PoP-level candidate arrives while the PoP is watched:
        # the watch is dropped and a *new* incident opens.
        stage.feed(candidate(bin_start=300.0))
        assert POP_F not in stage._watch
        assert stage.open[POP_F].start == 300.0
        # Old return tracking was stopped, fresh tracking restarted
        # from the last diverted set: nothing has returned yet.
        assert monitor.returned_fraction(POP_F) == 0.0

    def test_fresh_signal_separates_records(self):
        monitor, stage = opened_and_closed()
        stage.feed(candidate(bin_start=300.0))
        for i in range(3):
            monitor.observe(tagged(key(i), time=310.0))
        stage.feed(BinAdvanced(now=360.0))
        records = stage.finalize()
        mine = [r for r in records if r.located_pop == POP_F]
        # The second incident started beyond the merge gap (300 vs a
        # close at 120, gap 100): two independent records.
        assert len(mine) == 2
        assert all(r.merged_incidents == 1 for r in mine)
        assert mine[0].end == 120.0 and mine[1].start == 300.0


class TestFeedGapDuringOutage:
    def _loss(self, time):
        return BGPStateMessage(
            time=time,
            collector="rrc00",
            peer_asn=100,
            old_state=SessionState.ESTABLISHED,
            new_state=SessionState.IDLE,
        )

    def _recovery(self, time):
        return BGPStateMessage(
            time=time,
            collector="rrc00",
            peer_asn=100,
            old_state=SessionState.IDLE,
            new_state=SessionState.ESTABLISHED,
        )

    def test_gap_does_not_disturb_return_tracking(self):
        monitor = OutageMonitor(MonitorParams())
        for i in range(6):
            monitor.prime(tagged(key(i), time=0.0))
        stage = RecordStage(
            monitor, NullValidator(), restore_fraction=0.5, merge_gap_s=MERGE_GAP
        )
        for i in range(4):
            monitor.observe(tagged(key(i), time=10.0, withdraw=True))
        monitor.close_bin()
        stage.feed(candidate(bin_start=0.0))
        for i in range(3):
            monitor.observe(tagged(key(i), time=70.0))
        assert monitor.returned_fraction(POP_F) == pytest.approx(0.75)
        # Session loss: the peer's withdrawals are a feed gap, not an
        # oscillation — tracked fraction must not move.
        monitor.observe_state(self._loss(80.0))
        for i in range(3):
            monitor.observe(tagged(key(i), time=90.0, withdraw=True))
        assert monitor.returned_fraction(POP_F) == pytest.approx(0.75)

    def test_gap_suppresses_divergence_of_remaining_baseline(self):
        monitor = OutageMonitor(MonitorParams())
        for i in range(6):
            monitor.prime(tagged(key(i), time=0.0))
        for i in range(4):
            monitor.observe(tagged(key(i), time=10.0, withdraw=True))
        monitor.close_bin()
        # Outage open; now the collector session drops mid-outage.
        monitor.observe_state(self._loss(65.0))
        monitor.observe(tagged(key(4), time=70.0, withdraw=True))
        monitor.observe(tagged(key(5), time=70.0, withdraw=True))
        assert monitor.close_bin() == []
        # After recovery the same paths diverging do raise signals.
        monitor.observe_state(self._recovery(125.0))
        monitor.observe(tagged(key(4), time=130.0, withdraw=True))
        monitor.observe(tagged(key(5), time=130.0, withdraw=True))
        signals = monitor.close_bin()
        assert signals and all(s.pop == POP_F for s in signals)
