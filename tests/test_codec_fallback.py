"""The wire-batch codec fallback paths, queue and ring transports.

``_pack``/``_unpack`` (exported as ``pack_wires``/``unpack_wires``)
are marshal-first with a fallback for payloads marshal rejects, and a
corrupt or unknown codec tag must surface as
:class:`~repro.pipeline.liveness.PoisonedBatchError` — the vocabulary
the quarantine/rollback machinery speaks — never as a bare unmarshal
crash.  The shm transport's :func:`~repro.pipeline.shm.encode_frame`
mirrors the same policy with its pickle codec.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.liveness import PoisonedBatchError
from repro.pipeline.parallel import pack_wires, unpack_wires
from repro.pipeline.shm import ShmRing


class Opaque:
    """A payload marshal rejects (arbitrary class instance)."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Opaque) and other.value == self.value

    def __hash__(self):
        return hash(("Opaque", self.value))


#: Wire-shaped scalars: what serde actually puts in envelope slots.
scalars = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)
wire = st.lists(scalars, min_size=1, max_size=6)
wires = st.lists(wire, min_size=0, max_size=12)


class TestQueueCodec:
    @settings(max_examples=50, deadline=None)
    @given(batch=wires)
    def test_marshalable_batches_roundtrip(self, batch):
        codec, payload = pack_wires(batch)
        assert codec == "m"
        assert unpack_wires(codec, payload) == batch

    @settings(max_examples=50, deadline=None)
    @given(batch=wires, value=scalars)
    def test_non_marshalable_batches_roundtrip_via_fallback(
        self, batch, value
    ):
        poisoned = batch + [[Opaque(value)]]
        codec, payload = pack_wires(poisoned)
        assert codec == "p"  # marshal rejected the class instance
        assert unpack_wires(codec, payload) == poisoned

    def test_corrupt_marshal_payload_raises_poisoned(self):
        with pytest.raises(PoisonedBatchError):
            unpack_wires("m", b"\x00not-a-marshal-payload")

    def test_truncated_marshal_payload_raises_poisoned(self):
        _, payload = pack_wires([["A", 1]])
        with pytest.raises(PoisonedBatchError):
            unpack_wires("m", payload[: len(payload) // 2])

    def test_unknown_codec_tag_raises_poisoned(self):
        with pytest.raises(PoisonedBatchError):
            unpack_wires("x", b"whatever")


class TestRingCodec:
    @settings(max_examples=25, deadline=None)
    @given(batch=wires, value=scalars)
    def test_fallback_frames_roundtrip_through_a_ring(self, batch, value):
        poisoned = batch + [[Opaque(value)]]
        ring = ShmRing(capacity=1 << 16)
        try:
            ring.put((poisoned, None))  # header-only feed-style frame
            frame = ring.get()
            assert chr(frame.codec) == "P"
            assert frame.header() == (poisoned, None)
            frame.release()
        finally:
            ring.destroy()
