"""Live sampling never perturbs output (hypothesis + chaos).

The hard invariant of the telemetry plane: polling
``Kepler.metrics_live()`` from a concurrent thread at *arbitrary*
points mid-run — including while a supervised runtime is killing,
restarting and replaying workers — changes nothing observable.
Records, signal log, rejects and the telemetry-stripped checkpoint
document stay byte-identical to the unsampled linear ground truth
across every runtime layout × transport.

The poller is deliberately hostile: no synchronisation with the
driver beyond the public API, an aggressive sampling period, and
``set_live_interval(0.0)`` so workers emit a metric frame on every
exchange (maximum telemetry traffic on the wire).
"""

from __future__ import annotations

import json
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_pipeline_equivalence import (
    FIRST_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro import telemetry
from repro.core.kepler import Kepler, KeplerParams, RecoveryPolicy
from repro.ingest import split_by_collector
from repro.pipeline import (
    FaultPlan,
    FaultSpec,
    fork_available,
    strip_checkpoint_telemetry,
)
from repro.pipeline import faults
from repro.scenarios import World, build_world

END_TIME = 80_000.0

needs_fork = pytest.mark.skipif(
    not fork_available(),
    reason="runtime requires the fork start method",
)

#: Runtime layouts under test.  Keys name the pytest ids.
LAYOUTS: dict[str, dict] = {
    "linear": {},
    "shards": dict(shards=2),
    "process_workers": dict(process_workers=2, process_batch=128),
    "shard_processes": dict(shard_processes=2, process_batch=128),
    "ingest_feeds": dict(ingest_feeds=2, shard_processes=2, process_batch=128),
}
FORK_LAYOUTS = {"process_workers", "shard_processes", "ingest_feeds"}

POLICY = dict(
    checkpoint_interval=512,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
    stall_timeout_s=5.0,
    teardown_deadline_s=0.5,
)

sampling_settings = settings(
    max_examples=2,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def ground_truth(world_a) -> tuple:
    """Unsampled linear run: the output ground truth for every layout."""
    world, snapshot, elements = world_a
    detector = make_kepler(world, KeplerParams())
    detector.prime(snapshot)
    detector.process(elements)
    detector.finalize(end_time=END_TIME)
    return observed(detector)


#: Stripped checkpoint JSON of an *unsampled* run, per (layout,
#: transport).  The canonical document shape is layout-dependent (the
#: sharded runtimes checkpoint per-chain sections), so the sampling
#: invariant is sampled == unsampled *same layout*, while records /
#: signals / rejects are pinned to the linear ground truth.
_BASELINE_DOCS: dict[tuple[str, str], str] = {}


def baseline_doc(world_a, key: tuple[str, str], params: KeplerParams) -> str:
    doc = _BASELINE_DOCS.get(key)
    if doc is None:
        world, snapshot, elements = world_a
        detector = make_kepler(world, params)
        try:
            detector.prime(snapshot)
            if "ingest_feeds" in LAYOUTS[key[0]]:
                detector.process_feeds(split_by_collector(elements))
            else:
                detector.process(elements)
            detector.finalize(end_time=END_TIME)
            doc = json.dumps(
                strip_checkpoint_telemetry(detector.snapshot()),
                sort_keys=True,
            )
        finally:
            detector.close()
        _BASELINE_DOCS[key] = doc
    return doc


@pytest.fixture(autouse=True)
def _unthrottled_frames():
    telemetry.set_live_interval(0.0)
    yield
    telemetry.set_live_interval(telemetry.DEFAULT_LIVE_INTERVAL_S)


def make_kepler(world: World, params: KeplerParams) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator(),
    )


def observed(detector: Kepler) -> tuple[list, list, list]:
    return (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
        [(c.pop, c.bin_start) for c in detector.rejected],
    )


class Poller:
    """Hostile concurrent sampler of ``detector.metrics_live()``."""

    def __init__(self, detector: Kepler, period_s: float) -> None:
        self.detector = detector
        self.period_s = period_s
        self.samples: list[dict] = []
        self.errors: list[BaseException] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.samples.append(self.detector.metrics_live())
            except BaseException as exc:  # noqa: BLE001
                self.errors.append(exc)
                return
            time.sleep(self.period_s)

    def __enter__(self) -> "Poller":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=10)


def sampled_run(
    world_a,
    params: KeplerParams,
    *,
    period_s: float,
    via_feeds: bool = False,
) -> tuple[tuple, str, Poller]:
    """Full run with a live poller attached; returns outputs + snapshot."""
    world, snapshot, elements = world_a
    detector = make_kepler(world, params)
    try:
        detector.prime(snapshot)
        with Poller(detector, period_s) as poller:
            if via_feeds:
                detector.process_feeds(split_by_collector(elements))
            else:
                detector.process(elements)
            detector.finalize(end_time=END_TIME)
        doc = json.dumps(
            strip_checkpoint_telemetry(detector.snapshot()), sort_keys=True
        )
        return observed(detector), doc, poller
    finally:
        detector.close()


def check_identity(got, doc, poller, ground_truth, expected_doc) -> None:
    assert not poller.errors, poller.errors[:1]
    assert got == ground_truth
    if doc != expected_doc:  # avoid a multi-MB difflib on failure
        pytest.fail(
            "stripped checkpoint diverged under live sampling "
            f"({len(doc)} vs {len(expected_doc)} bytes)"
        )
    assert poller.samples, "poller never sampled"
    for snap in (poller.samples[0], poller.samples[-1]):
        assert "stages" in snap and "live" in snap and "depths" in snap
        json.dumps(snap, sort_keys=True)


# ----------------------------------------------------------------------
# Clean runs: every layout × transport, arbitrary sampling periods
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "layout",
    [
        pytest.param(name, marks=needs_fork if name in FORK_LAYOUTS else ())
        for name in LAYOUTS
    ],
)
@pytest.mark.parametrize("transport", ["queue", "shm"])
class TestCleanRunSampling:
    @sampling_settings
    @given(period_ms=st.integers(min_value=1, max_value=25))
    def test_sampling_is_invisible(
        self, world_a, ground_truth, layout, transport, period_ms
    ):
        if transport == "shm" and layout not in FORK_LAYOUTS:
            pytest.skip("transport only reaches the multiprocess runtimes")
        params = KeplerParams(transport=transport, **LAYOUTS[layout])
        expected_doc = baseline_doc(world_a, (layout, transport), params)
        got, doc, poller = sampled_run(
            world_a,
            params,
            period_s=period_ms / 1000.0,
            via_feeds=(layout == "ingest_feeds"),
        )
        check_identity(got, doc, poller, ground_truth, expected_doc)


# ----------------------------------------------------------------------
# Faulted runs: sampling while the supervisor kills and replays workers
# ----------------------------------------------------------------------
@needs_fork
class TestFaultedRunSampling:
    def _supervised(self, runtime: dict, transport: str) -> KeplerParams:
        return KeplerParams(
            supervised=True,
            recovery=RecoveryPolicy(**POLICY),
            transport=transport,
            **runtime,
        )

    @sampling_settings
    @given(
        at_element=st.integers(min_value=1, max_value=4000),
        period_ms=st.integers(min_value=1, max_value=10),
    )
    def test_tag_worker_kill_under_sampling(
        self, world_a, ground_truth, at_element, period_ms
    ):
        expected_doc = baseline_doc(
            world_a,
            ("process_workers", "queue"),
            KeplerParams(transport="queue", **LAYOUTS["process_workers"]),
        )
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="kill", at_element=at_element, worker_id=0)]
        )
        with faults.injected(plan):
            got, doc, poller = sampled_run(
                world_a,
                self._supervised(LAYOUTS["process_workers"], "queue"),
                period_s=period_ms / 1000.0,
            )
        check_identity(got, doc, poller, ground_truth, expected_doc)

    @sampling_settings
    @given(
        at_element=st.integers(min_value=1, max_value=4000),
        period_ms=st.integers(min_value=1, max_value=10),
    )
    @pytest.mark.parametrize("transport", ["queue", "shm"])
    def test_shard_worker_kill_under_sampling(
        self, world_a, ground_truth, transport, at_element, period_ms
    ):
        expected_doc = baseline_doc(
            world_a,
            ("shard_processes", transport),
            KeplerParams(transport=transport, **LAYOUTS["shard_processes"]),
        )
        plan = FaultPlan(
            [FaultSpec(scope="shard", kind="kill", at_element=at_element, worker_id=1)]
        )
        with faults.injected(plan):
            got, doc, poller = sampled_run(
                world_a,
                self._supervised(LAYOUTS["shard_processes"], transport),
                period_s=period_ms / 1000.0,
            )
        check_identity(got, doc, poller, ground_truth, expected_doc)

    def test_recovering_sample_is_well_formed(self, world_a, ground_truth):
        """Samples taken mid-rebuild degrade gracefully, never raise."""
        expected_doc = baseline_doc(
            world_a,
            ("shard_processes", "queue"),
            KeplerParams(transport="queue", **LAYOUTS["shard_processes"]),
        )
        plan = FaultPlan(
            [FaultSpec(scope="shard", kind="kill", at_element=900, worker_id=0)]
        )
        with faults.injected(plan):
            got, doc, poller = sampled_run(
                world_a,
                self._supervised(LAYOUTS["shard_processes"], "queue"),
                period_s=0.001,
            )
        check_identity(got, doc, poller, ground_truth, expected_doc)
        # Every sample — including any taken during the teardown/rebuild
        # window — carries the live section (possibly flagged recovering).
        assert all("live" in snap for snap in poller.samples)
