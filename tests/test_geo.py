"""Tests for the geography substrate."""

from __future__ import annotations

import math

import pytest

from repro.geo.cities import CONTINENTS, WORLD_CITIES, city_by_name, cities_by_continent
from repro.geo.cluster import cluster_identifiers, cluster_points
from repro.geo.distance import EARTH_RADIUS_KM, fiber_rtt_ms, haversine_km, midpoint
from repro.geo.geocoder import Geocoder


class TestHaversine:
    def test_zero_distance_for_identical_points(self):
        assert haversine_km(52.0, 4.0, 52.0, 4.0) == pytest.approx(0.0, abs=1e-9)

    def test_known_distance_amsterdam_frankfurt(self):
        # The paper: "The two IXPs are 360 kilometers away."
        d = haversine_km(52.3702, 4.8952, 50.1109, 8.6821)
        assert 350.0 <= d <= 375.0

    def test_known_distance_london_new_york(self):
        d = haversine_km(51.5074, -0.1278, 40.7128, -74.0060)
        assert 5500.0 <= d <= 5620.0

    def test_symmetry(self):
        a = haversine_km(10.0, 20.0, -30.0, 140.0)
        b = haversine_km(-30.0, 140.0, 10.0, 20.0)
        assert a == pytest.approx(b)

    def test_antipodal_upper_bound(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_latitude_out_of_range_raises(self):
        with pytest.raises(ValueError):
            haversine_km(95.0, 0.0, 0.0, 0.0)

    def test_longitude_out_of_range_raises(self):
        with pytest.raises(ValueError):
            haversine_km(0.0, 200.0, 0.0, 0.0)


class TestMidpoint:
    def test_midpoint_on_equator(self):
        lat, lon = midpoint(0.0, 0.0, 0.0, 90.0)
        assert lat == pytest.approx(0.0, abs=1e-6)
        assert lon == pytest.approx(45.0, abs=1e-6)

    def test_midpoint_longitude_normalised(self):
        lat, lon = midpoint(35.0, 170.0, 35.0, -170.0)
        assert -180.0 <= lon <= 180.0

    def test_midpoint_equidistant(self):
        lat, lon = midpoint(52.37, 4.90, 50.11, 8.68)
        d1 = haversine_km(52.37, 4.90, lat, lon)
        d2 = haversine_km(50.11, 8.68, lat, lon)
        assert d1 == pytest.approx(d2, rel=1e-3)


class TestFiberRtt:
    def test_zero_distance_zero_rtt(self):
        assert fiber_rtt_ms(0.0) == 0.0

    def test_monotonic_in_distance(self):
        assert fiber_rtt_ms(1000.0) < fiber_rtt_ms(2000.0)

    def test_transatlantic_ballpark(self):
        # ~5600 km should be in the tens of ms, not seconds.
        rtt = fiber_rtt_ms(5600.0)
        assert 50.0 <= rtt <= 120.0

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            fiber_rtt_ms(-1.0)


class TestGazetteer:
    def test_lookup_by_canonical_name(self):
        city = city_by_name("Amsterdam")
        assert city is not None and city.country == "NL"

    def test_lookup_by_iata(self):
        city = city_by_name("LHR")
        assert city is not None and city.name == "London"

    def test_lookup_by_alias_case_insensitive(self):
        city = city_by_name("nyc")
        assert city is not None and city.name == "New York"

    def test_unknown_identifier_returns_none(self):
        assert city_by_name("Atlantis") is None

    def test_continent_codes_cover_all_cities(self):
        assert {c.continent for c in WORLD_CITIES} <= set(CONTINENTS)

    def test_europe_dominates_like_the_paper(self):
        eu = cities_by_continent("EU")
        na = cities_by_continent("NA")
        af = cities_by_continent("AF")
        assert len(eu) > len(na) > len(af)

    def test_unknown_continent_raises(self):
        with pytest.raises(ValueError):
            cities_by_continent("XX")

    def test_identifiers_unique_enough(self):
        # No canonical name should be claimed by two different cities.
        seen: dict[str, str] = {}
        for city in WORLD_CITIES:
            key = city.name.lower()
            assert key not in seen
            seen[key] = city.name


class TestGeocoder:
    def test_canonical_name_exact_coordinates(self):
        geocoder = Geocoder()
        result = geocoder.geocode("Amsterdam")
        assert result is not None
        assert result.lat == pytest.approx(52.3702)
        assert result.lon == pytest.approx(4.8952)

    def test_alias_within_offset_radius(self):
        geocoder = Geocoder(max_offset_km=6.0)
        canonical = geocoder.geocode("New York")
        alias = geocoder.geocode("NYC")
        assert canonical is not None and alias is not None
        d = haversine_km(canonical.lat, canonical.lon, alias.lat, alias.lon)
        assert 0.0 < d <= 6.5

    def test_alias_resolution_is_deterministic(self):
        a = Geocoder().geocode("JFK")
        b = Geocoder().geocode("JFK")
        assert a == b

    def test_unknown_identifier_none(self):
        assert Geocoder().geocode("Middle of Nowhere") is None

    def test_airport_location_type(self):
        result = Geocoder().geocode("JFK")
        assert result is not None and result.location_type == "airport"

    def test_caching_counts_queries_once(self):
        geocoder = Geocoder()
        geocoder.geocode("Paris")
        geocoder.geocode("Paris")
        assert geocoder.query_count == 1

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            Geocoder(max_offset_km=-1.0)


class TestClustering:
    def test_identifiers_of_same_city_cluster_together(self):
        clusters, unresolved = cluster_identifiers(
            ["New York", "NYC", "JFK", "London", "LHR"]
        )
        assert not unresolved
        by_member = {m: frozenset(c) for c in clusters for m in c}
        assert by_member["New York"] == by_member["NYC"] == by_member["JFK"]
        assert by_member["London"] == by_member["LHR"]
        assert by_member["London"] != by_member["NYC"]

    def test_unresolvable_identifiers_reported(self):
        clusters, unresolved = cluster_identifiers(["Paris", "Narnia"])
        assert unresolved == {"Narnia"}
        assert any("Paris" in c for c in clusters)

    def test_single_linkage_chains(self):
        # A-B within radius and B-C within radius chain into one cluster
        # even though A-C exceed it.
        points = {
            "a": (0.0, 0.0),
            "b": (0.0, 0.08),  # ~8.9 km east
            "c": (0.0, 0.16),  # ~8.9 km further
        }
        clusters = cluster_points(points, radius_km=10.0)
        assert len(clusters) == 1

    def test_distant_points_stay_apart(self):
        points = {"a": (0.0, 0.0), "b": (1.0, 1.0)}
        clusters = cluster_points(points, radius_km=10.0)
        assert len(clusters) == 2

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            cluster_points({"a": (0.0, 0.0)}, radius_km=-5.0)

    def test_deterministic_cluster_ordering(self):
        points = {"x": (0.0, 0.0), "y": (0.0, 0.01), "z": (40.0, 40.0)}
        assert cluster_points(points) == cluster_points(points)
