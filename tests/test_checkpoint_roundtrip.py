"""Checkpoint/resume: snapshot -> restore resumes byte-identically.

Property-based: a detector snapshotted at an *arbitrary* mid-stream
cut, serialised through JSON (as a new process would read it), and
restored into a freshly-constructed detector must finish the stream
with records and signal log identical to an uninterrupted run — on
two scenario worlds, with and without a data-plane validator, linear
and sharded.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_pipeline_equivalence import (
    FIRST_WORLD,
    SECOND_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro.core.kepler import Kepler, KeplerParams
from repro.scenarios import World, build_world

END_TIME = 80_000.0


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def world_b() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=SECOND_WORLD.seed, world_params=SECOND_WORLD)
    )


def make_kepler(
    world: World, params: KeplerParams, with_validator: bool
) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator() if with_validator else None,
    )


#: Baselines keyed by (world seed, shards, validator) — each hypothesis
#: example re-runs the resumed half only, not the uninterrupted run.
_baselines: dict[tuple, tuple[list, list]] = {}


def uninterrupted(
    replay: tuple[World, list, list],
    params: KeplerParams,
    with_validator: bool,
) -> tuple[list, list]:
    world, snapshot, elements = replay
    cache_key = (world.seed, params.shards, with_validator)
    cached = _baselines.get(cache_key)
    if cached is not None:
        return cached
    detector = make_kepler(world, params, with_validator)
    detector.prime(snapshot)
    detector.process(elements)
    detector.finalize(end_time=END_TIME)
    result = (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
    )
    _baselines[cache_key] = result
    return result


def resumed_at(
    replay: tuple[World, list, list],
    params: KeplerParams,
    with_validator: bool,
    cut: int,
) -> tuple[list, list]:
    """Run to ``cut``, snapshot, JSON round-trip, restore, finish."""
    world, snapshot, elements = replay
    first = make_kepler(world, params, with_validator)
    first.prime(snapshot)
    first.process(elements[:cut])
    blob = json.dumps(first.snapshot())

    second = make_kepler(world, params, with_validator)
    second.restore(json.loads(blob))
    second.process(elements[cut:])
    second.finalize(end_time=END_TIME)
    return (
        [record_fields(r) for r in second.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in second.signal_log
        ],
    )


class TestRoundTripProperties:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    def test_world_a_with_dataplane(self, world_a, frac):
        params = KeplerParams()
        baseline = uninterrupted(world_a, params, True)
        cut = int(frac * len(world_a[2]))
        assert resumed_at(world_a, params, True, cut) == baseline

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    def test_world_b_control_plane(self, world_b, frac):
        params = KeplerParams()
        baseline = uninterrupted(world_b, params, False)
        cut = int(frac * len(world_b[2]))
        assert resumed_at(world_b, params, False, cut) == baseline

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    def test_world_a_sharded(self, world_a, frac):
        params = KeplerParams(shards=4)
        baseline = uninterrupted(world_a, params, True)
        cut = int(frac * len(world_a[2]))
        assert resumed_at(world_a, params, True, cut) == baseline


class TestCheckpointDocument:
    def test_snapshot_is_json_serialisable_and_versioned(self, world_a):
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(), False)
        detector.prime(snapshot)
        detector.process(elements[: len(elements) // 3])
        document = detector.snapshot()
        blob = json.dumps(document)
        parsed = json.loads(blob)
        assert parsed["format"] == "kepler-checkpoint"
        assert parsed["version"] == 1
        assert parsed["shards"] == 0
        assert parsed["primed_paths"] == detector.primed_paths

    def test_snapshot_is_read_only_and_idempotent(self, world_a):
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(), False)
        detector.prime(snapshot)
        detector.process(elements[: len(elements) // 3])
        # Operators checkpoint periodically: taking a snapshot must not
        # mutate the detector, so back-to-back documents are identical.
        first = json.dumps(detector.snapshot(), sort_keys=True)
        second = json.dumps(detector.snapshot(), sort_keys=True)
        assert first == second

    def test_restore_rejects_wrong_version(self, world_a):
        world, _, _ = world_a
        detector = make_kepler(world, KeplerParams(), False)
        document = detector.snapshot()
        document["version"] = 99
        fresh = make_kepler(world, KeplerParams(), False)
        with pytest.raises(ValueError, match="version"):
            fresh.restore(document)

    def test_restore_rejects_shard_mismatch(self, world_a):
        world, _, _ = world_a
        detector = make_kepler(world, KeplerParams(shards=4), False)
        document = detector.snapshot()
        fresh = make_kepler(world, KeplerParams(shards=2), False)
        with pytest.raises(ValueError, match="shards"):
            fresh.restore(document)

    def test_restore_rejects_foreign_document(self, world_a):
        world, _, _ = world_a
        fresh = make_kepler(world, KeplerParams(), False)
        with pytest.raises(ValueError, match="checkpoint"):
            fresh.restore({"format": "something-else"})

    def test_restored_metrics_and_counters_survive(self, world_a):
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(), False)
        detector.prime(snapshot)
        detector.process(elements[: len(elements) // 2])
        blob = json.dumps(detector.snapshot())

        fresh = make_kepler(world, KeplerParams(), False)
        fresh.restore(json.loads(blob))
        assert fresh.primed_paths == detector.primed_paths
        assert (
            fresh.stages.ingest.announcements
            == detector.stages.ingest.announcements
        )
        assert (
            fresh.monitor.total_baseline_entries
            == detector.monitor.total_baseline_entries
        )
        assert (
            fresh.monitor.pending_count == detector.monitor.pending_count
        )
        original = detector.metrics.snapshot()
        restored = fresh.metrics.snapshot()
        assert original["bins"] == restored["bins"]
        assert [s["name"] for s in original["stages"]] == [
            s["name"] for s in restored["stages"]
        ]
