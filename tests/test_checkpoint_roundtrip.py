"""Checkpoint/resume: snapshot -> restore resumes byte-identically.

Property-based: a detector snapshotted at an *arbitrary* mid-stream
cut, serialised through JSON (as a new process would read it), and
restored into a freshly-constructed detector must finish the stream
with records and signal log identical to an uninterrupted run — on
two scenario worlds, with and without a data-plane validator, linear
and sharded.

Two properties cover the partitioned monitor and the layout-free
document (version 3):

* ``PartitionedMonitor(partitions=n)`` is byte-identical to the
  singleton monitor for arbitrary partition counts and arbitrary
  mid-stream checkpoint cuts, including restores into a *different*
  partition count (the monitor document is canonical);
* a snapshot written by any shard layout restores into any other
  (linear <-> sharded, differing shard counts) with identical
  continued output.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_pipeline_equivalence import (
    FIRST_WORLD,
    SECOND_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro.core.kepler import Kepler, KeplerParams
from repro.scenarios import World, build_world

END_TIME = 80_000.0


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def world_b() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=SECOND_WORLD.seed, world_params=SECOND_WORLD)
    )


def make_kepler(
    world: World, params: KeplerParams, with_validator: bool
) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator() if with_validator else None,
    )


#: Baselines keyed by (world seed, shards, validator) — each hypothesis
#: example re-runs the resumed half only, not the uninterrupted run.
_baselines: dict[tuple, tuple[list, list]] = {}


def uninterrupted(
    replay: tuple[World, list, list],
    params: KeplerParams,
    with_validator: bool,
) -> tuple[list, list]:
    world, snapshot, elements = replay
    cache_key = (world.seed, params.shards, with_validator)
    cached = _baselines.get(cache_key)
    if cached is not None:
        return cached
    detector = make_kepler(world, params, with_validator)
    detector.prime(snapshot)
    detector.process(elements)
    detector.finalize(end_time=END_TIME)
    result = (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
    )
    _baselines[cache_key] = result
    return result


def resumed_at(
    replay: tuple[World, list, list],
    params: KeplerParams,
    with_validator: bool,
    cut: int,
    resume_params: KeplerParams | None = None,
) -> tuple[list, list]:
    """Run to ``cut``, snapshot, JSON round-trip, restore, finish.

    ``resume_params`` restores the document into a detector with a
    *different* configuration (shard layout, monitor partitioning) —
    the layout-free checkpoint property.
    """
    world, snapshot, elements = replay
    first = make_kepler(world, params, with_validator)
    first.prime(snapshot)
    first.process(elements[:cut])
    blob = json.dumps(first.snapshot())

    second = make_kepler(world, resume_params or params, with_validator)
    second.restore(json.loads(blob))
    second.process(elements[cut:])
    second.finalize(end_time=END_TIME)
    return (
        [record_fields(r) for r in second.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in second.signal_log
        ],
    )


class TestRoundTripProperties:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    def test_world_a_with_dataplane(self, world_a, frac):
        params = KeplerParams()
        baseline = uninterrupted(world_a, params, True)
        cut = int(frac * len(world_a[2]))
        assert resumed_at(world_a, params, True, cut) == baseline

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    def test_world_b_control_plane(self, world_b, frac):
        params = KeplerParams()
        baseline = uninterrupted(world_b, params, False)
        cut = int(frac * len(world_b[2]))
        assert resumed_at(world_b, params, False, cut) == baseline

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    def test_world_a_sharded(self, world_a, frac):
        params = KeplerParams(shards=4)
        baseline = uninterrupted(world_a, params, True)
        cut = int(frac * len(world_a[2]))
        assert resumed_at(world_a, params, True, cut) == baseline

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        partitions=st.integers(min_value=1, max_value=6),
        restore_partitions=st.integers(min_value=1, max_value=6),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_partitioned_monitor_matches_singleton_world_a(
        self, world_a, partitions, restore_partitions, frac
    ):
        """PartitionedMonitor(n) == singleton, any n, any cut, any
        restore partition count (the monitor document is canonical)."""
        baseline = uninterrupted(world_a, KeplerParams(), True)
        cut = int(frac * len(world_a[2]))
        resumed = resumed_at(
            world_a,
            KeplerParams(monitor_partitions=partitions),
            True,
            cut,
            resume_params=KeplerParams(
                monitor_partitions=restore_partitions
            ),
        )
        assert resumed == baseline

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        partitions=st.integers(min_value=2, max_value=5),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_partitioned_monitor_matches_singleton_world_b(
        self, world_b, partitions, frac
    ):
        baseline = uninterrupted(world_b, KeplerParams(), False)
        cut = int(frac * len(world_b[2]))
        resumed = resumed_at(
            world_b,
            KeplerParams(monitor_partitions=partitions),
            False,
            cut,
        )
        assert resumed == baseline

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        from_shards=st.sampled_from([0, 2, 4]),
        to_shards=st.sampled_from([0, 2, 3]),
        frac=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_cross_layout_restore(self, world_a, from_shards, to_shards, frac):
        """A snapshot from any shard layout resumes in any other."""
        baseline = uninterrupted(world_a, KeplerParams(), True)
        cut = int(frac * len(world_a[2]))
        resumed = resumed_at(
            world_a,
            KeplerParams(shards=from_shards),
            True,
            cut,
            resume_params=KeplerParams(shards=to_shards),
        )
        assert resumed == baseline


class TestCheckpointDocument:
    def test_snapshot_is_json_serialisable_and_versioned(self, world_a):
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(), False)
        detector.prime(snapshot)
        detector.process(elements[: len(elements) // 3])
        document = detector.snapshot()
        blob = json.dumps(document)
        parsed = json.loads(blob)
        assert parsed["format"] == "kepler-checkpoint"
        assert parsed["version"] == 3
        assert parsed["shards"] == 0
        assert parsed["primed_paths"] == detector.primed_paths

    def test_snapshot_is_read_only_and_idempotent(self, world_a):
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(), False)
        detector.prime(snapshot)
        detector.process(elements[: len(elements) // 3])
        # Operators checkpoint periodically: taking a snapshot must not
        # mutate the detector, so back-to-back documents are identical.
        first = json.dumps(detector.snapshot(), sort_keys=True)
        second = json.dumps(detector.snapshot(), sort_keys=True)
        assert first == second

    def test_restore_rejects_wrong_version(self, world_a):
        world, _, _ = world_a
        detector = make_kepler(world, KeplerParams(), False)
        document = detector.snapshot()
        document["version"] = 99
        fresh = make_kepler(world, KeplerParams(), False)
        with pytest.raises(ValueError, match="version"):
            fresh.restore(document)

    def test_shard_mismatch_converts_instead_of_rejecting(self, world_a):
        """A v3 document converts between shard layouts on restore."""
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(shards=4), False)
        detector.prime(snapshot)
        detector.process(elements[: len(elements) // 3])
        document = json.loads(json.dumps(detector.snapshot()))
        fresh = make_kepler(world, KeplerParams(shards=2), False)
        fresh.restore(document)
        assert (
            fresh.monitor.total_baseline_entries
            == detector.monitor.total_baseline_entries
        )

    def test_partition_layouts_write_identical_documents(self, world_a):
        """The monitor document is canonical across partition counts."""
        world, snapshot, elements = world_a
        documents = []
        for partitions in (0, 3):
            detector = make_kepler(
                world, KeplerParams(monitor_partitions=partitions), False
            )
            detector.prime(snapshot)
            detector.process(elements[: len(elements) // 3])
            document = detector.snapshot()
            # Wall-clock metering differs between runs by nature;
            # everything else must match byte for byte.
            metrics = document["pipeline"]["metrics"]
            metrics["stages"] = [
                [name, fed, emitted]
                for name, fed, emitted, _ in metrics["stages"]
            ]
            metrics["bins"].pop("total_latency_s")
            metrics["bins"].pop("max_latency_s")
            documents.append(json.dumps(document, sort_keys=True))
        assert documents[0] == documents[1]

    def test_restore_rejects_foreign_document(self, world_a):
        world, _, _ = world_a
        fresh = make_kepler(world, KeplerParams(), False)
        with pytest.raises(ValueError, match="checkpoint"):
            fresh.restore({"format": "something-else"})

    def test_restored_metrics_and_counters_survive(self, world_a):
        world, snapshot, elements = world_a
        detector = make_kepler(world, KeplerParams(), False)
        detector.prime(snapshot)
        detector.process(elements[: len(elements) // 2])
        blob = json.dumps(detector.snapshot())

        fresh = make_kepler(world, KeplerParams(), False)
        fresh.restore(json.loads(blob))
        assert fresh.primed_paths == detector.primed_paths
        assert (
            fresh.stages.ingest.announcements
            == detector.stages.ingest.announcements
        )
        assert (
            fresh.monitor.total_baseline_entries
            == detector.monitor.total_baseline_entries
        )
        assert (
            fresh.monitor.pending_count == detector.monitor.pending_count
        )
        original = detector.metrics.snapshot()
        restored = fresh.metrics.snapshot()
        assert original["bins"] == restored["bins"]
        assert [s["name"] for s in original["stages"]] == [
            s["name"] for s in restored["stages"]
        ]
