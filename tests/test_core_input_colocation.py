"""Tests for the input module and colocation map construction."""

from __future__ import annotations


from repro.bgp.communities import Community
from repro.bgp.messages import BGPUpdate, ElemType
from repro.core.colocation import (
    ColocationMap,
    MIN_TRACKABLE_MEMBERS,
    build_colocation_map,
)
from repro.core.input import InputModule
from repro.docmine.dictionary import (
    CommunityDictionary,
    DictionaryEntry,
    PoP,
    PoPKind,
)
from repro.topology.sources import (
    ColocationRecord,
    IXPRecord,
    export_peeringdb,
)


def make_dictionary() -> CommunityDictionary:
    d = CommunityDictionary()
    for community, pop in [
        (Community(10, 101), PoP(PoPKind.FACILITY, "mf1")),
        (Community(30, 301), PoP(PoPKind.CITY, "London")),
    ]:
        d.entries[community] = DictionaryEntry(
            community=community, pop=pop, source_url="test", surface="x"
        )
    d.rs_asn_to_pop[59900] = PoP(PoPKind.IXP, "mix1")
    return d


def make_colo() -> ColocationMap:
    records = [
        ColocationRecord(
            source="peeringdb", name="Test DC", operator="Test",
            street="1 st", postcode="E14 1AA", city_name="London",
            country="GB", tenants=(10, 20, 30), fac_id_hint="f1",
        )
    ]
    ixp_records = [
        IXPRecord(
            source="peeringdb", name="TEST-IX", website="https://t.ix",
            city_name="London", country="GB", members=(20, 30, 40),
            facility_postcodes=("E14 1AA",), ixp_id_hint="ix1",
        )
    ]
    colo = build_colocation_map(records, ixp_records)
    # Rename the IXP map id for the dictionary above.
    ixp = colo.ixps.pop("https://t.ix")
    ixp.map_id = "mix1"
    colo.ixps["mix1"] = ixp
    colo.reindex()
    return colo


def update(path, communities, withdraw=False, time=0.0, prefix="10.0.0.0/24"):
    return BGPUpdate(
        time=time,
        collector="rrc00",
        peer_asn=path[0] if path else 1,
        prefix=prefix,
        elem_type=ElemType.WITHDRAWAL if withdraw else ElemType.ANNOUNCEMENT,
        as_path=tuple(path),
        communities=tuple(communities),
    )


class TestInputModule:
    def _module(self):
        return InputModule(make_dictionary(), make_colo())

    def test_known_community_mapped_with_near_and_far(self):
        mod = self._module()
        tagged = mod.process(update((1, 10, 30), [Community(10, 101)]))
        assert tagged is not None
        assert len(tagged.tags) == 1
        tag = tagged.tags[0]
        assert tag.pop == PoP(PoPKind.FACILITY, "mf1")
        assert tag.near_asn == 10
        assert tag.far_asn == 30

    def test_unknown_community_ignored(self):
        mod = self._module()
        tagged = mod.process(update((1, 10, 30), [Community(999, 1)]))
        assert tagged is not None and tagged.tags == ()

    def test_offpath_community_ignored(self):
        # 10:101 is known but AS10 is not on the path: leaked community.
        mod = self._module()
        tagged = mod.process(update((1, 2, 3), [Community(10, 101)]))
        assert tagged is not None and tagged.tags == ()

    def test_origin_tagger_has_no_far_end(self):
        mod = self._module()
        tagged = mod.process(update((1, 10), [Community(10, 101)]))
        assert tagged is not None
        assert tagged.tags[0].far_asn is None

    def test_route_server_community_attributed_to_member_pair(self):
        mod = self._module()
        tagged = mod.process(update((20, 30, 5), [Community(59900, 0)]))
        assert tagged is not None
        tag = tagged.tags[0]
        assert tag.pop == PoP(PoPKind.IXP, "mix1")
        assert (tag.near_asn, tag.far_asn) == (20, 30)

    def test_route_server_without_member_pair_unattributed(self):
        mod = self._module()
        tagged = mod.process(update((1, 2, 3), [Community(59900, 0)]))
        assert tagged is not None
        tag = tagged.tags[0]
        assert tag.near_asn is None and tag.far_asn is None

    def test_withdrawal_passes_through(self):
        mod = self._module()
        tagged = mod.process(update((), [], withdraw=True))
        assert tagged is not None and tagged.is_withdrawal

    def test_looped_path_discarded(self):
        mod = self._module()
        assert mod.process(update((1, 2, 1), [])) is None
        assert mod.discarded_count == 1

    def test_prepending_cleaned_before_tagging(self):
        mod = self._module()
        tagged = mod.process(update((1, 10, 10, 30), [Community(10, 101)]))
        assert tagged is not None
        assert tagged.as_path == (1, 10, 30)
        assert tagged.tags[0].far_asn == 30

    def test_duplicate_tags_deduplicated(self):
        mod = self._module()
        tagged = mod.process(
            update((1, 10, 30), [Community(10, 101), Community(10, 101)])
        )
        assert tagged is not None and len(tagged.tags) == 1


class TestColocationMap:
    def test_merge_by_postcode(self):
        records = [
            ColocationRecord(
                source="peeringdb", name="Telehouse North", operator="T",
                street="s", postcode="E14 9YY", city_name="London",
                country="GB", tenants=(1, 2), fac_id_hint="f1",
            ),
            ColocationRecord(
                source="datacentermap", name="TELEHOUSE - North", operator="T",
                street="s", postcode="E14 9YY", city_name="London",
                country="GB", tenants=(2, 3), fac_id_hint="f1",
            ),
        ]
        colo = build_colocation_map(records, [])
        assert len(colo.facilities) == 1
        fac = next(iter(colo.facilities.values()))
        assert fac.tenants == {1, 2, 3}
        assert fac.sources == {"peeringdb", "datacentermap"}

    def test_different_postcodes_stay_apart(self):
        records = [
            ColocationRecord(
                source="peeringdb", name="A", operator="a", street="s",
                postcode="P1", city_name="London", country="GB",
                tenants=(1,), fac_id_hint="fa",
            ),
            ColocationRecord(
                source="peeringdb", name="B", operator="b", street="s",
                postcode="P2", city_name="London", country="GB",
                tenants=(2,), fac_id_hint="fb",
            ),
        ]
        colo = build_colocation_map(records, [])
        assert len(colo.facilities) == 2

    def test_ixp_merge_by_website(self):
        recs = [
            IXPRecord(
                source="peeringdb", name="LINX", website="https://linx.net",
                city_name="London", country="GB", members=(1, 2),
                facility_postcodes=(), ixp_id_hint="linx",
            ),
            IXPRecord(
                source="datacentermap", name="LINX London",
                website="https://linx.net", city_name="London", country="GB",
                members=(2, 3), facility_postcodes=(), ixp_id_hint="linx",
            ),
        ]
        colo = build_colocation_map([], recs)
        assert len(colo.ixps) == 1
        assert next(iter(colo.ixps.values())).members == {1, 2, 3}

    def test_ixp_facility_links_resolved_via_postcodes(self):
        fac = ColocationRecord(
            source="peeringdb", name="DC", operator="d", street="s",
            postcode="E14 1AA", city_name="London", country="GB",
            tenants=(1,), fac_id_hint="f1",
        )
        ixp = IXPRecord(
            source="peeringdb", name="IX", website="https://ix.net",
            city_name="London", country="GB", members=(1,),
            facility_postcodes=("E14 1AA",), ixp_id_hint="ix1",
        )
        colo = build_colocation_map([fac], [ixp])
        ixp_rec = next(iter(colo.ixps.values()))
        assert len(ixp_rec.facility_map_ids) == 1

    def test_trackable_facilities_threshold(self):
        colo = make_colo()
        # 3 tenants, all locatable: still below MIN_TRACKABLE_MEMBERS.
        assert MIN_TRACKABLE_MEMBERS > 3
        assert colo.trackable_facilities({10, 20, 30}) == set()
        fac = next(iter(colo.facilities.values()))
        fac.tenants.update({40, 50, 60})
        colo.reindex()
        assert colo.trackable_facilities({10, 20, 30, 40, 50, 60})

    def test_reindex_consistency(self):
        colo = make_colo()
        for map_id, fac in colo.facilities.items():
            for asn in fac.tenants:
                assert map_id in colo.facilities_of_as(asn)

    def test_full_world_merge_quality(self, world):
        # Nearly every ground-truth facility must end up in the map
        # exactly once (postcode merging, no spurious splits).
        hint_counts: dict[str, int] = {}
        for fac in world.colo.facilities.values():
            for hint in fac.fac_id_hints:
                hint_counts[hint] = hint_counts.get(hint, 0) + 1
        assert all(count == 1 for count in hint_counts.values())
        coverage = len(hint_counts) / len(world.topo.facilities)
        assert coverage >= 0.9

    def test_full_world_tenant_union_superset_of_sources(self, world):
        fac_pdb, _ = export_peeringdb(world.topo, seed=world.seed)
        by_hint = {r.fac_id_hint: set(r.tenants) for r in fac_pdb}
        for fac in world.colo.facilities.values():
            for hint in fac.fac_id_hints:
                if hint in by_hint:
                    assert by_hint[hint] <= fac.tenants
