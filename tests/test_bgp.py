"""Tests for the BGP substrate."""

from __future__ import annotations

import pytest

from repro.bgp.collector import Collector, CollectorPeer
from repro.bgp.communities import Community, communities_from_asn, parse_communities
from repro.bgp.messages import (
    BGPStateMessage,
    BGPUpdate,
    ElemType,
    SessionState,
    UpdateBatch,
)
from repro.bgp.rib import RoutingInformationBase
from repro.bgp.sanitize import (
    deprepend,
    has_as_loop,
    is_private_asn,
    is_special_purpose_asn,
    sanitize_path,
)
from repro.bgp.stream import BGPStream, split_by_type


def _announce(time=0.0, collector="rrc00", peer=100, prefix="10.0.0.0/24",
              path=(100, 200, 300), communities=(), afi=4):
    return BGPUpdate(
        time=time,
        collector=collector,
        peer_asn=peer,
        prefix=prefix,
        elem_type=ElemType.ANNOUNCEMENT,
        as_path=tuple(path),
        communities=tuple(communities),
        afi=afi,
    )


def _withdraw(time=0.0, collector="rrc00", peer=100, prefix="10.0.0.0/24"):
    return BGPUpdate(
        time=time,
        collector=collector,
        peer_asn=peer,
        prefix=prefix,
        elem_type=ElemType.WITHDRAWAL,
    )


class TestCommunity:
    def test_parse_roundtrip(self):
        c = Community.parse("13030:51904")
        assert c == Community(13030, 51904)
        assert str(c) == "13030:51904"

    def test_parse_rejects_garbage(self):
        for bad in ("", "abc", "1:2:3", "13030", ":42", "13030:"):
            with pytest.raises(ValueError):
                Community.parse(bad)

    def test_value_range_enforced(self):
        with pytest.raises(ValueError):
            Community(-1, 5)
        with pytest.raises(ValueError):
            Community(1, 2**33)

    def test_is_extended(self):
        assert not Community(13030, 51904).is_extended
        assert Community(200000, 1).is_extended

    def test_ordering_is_total(self):
        assert Community(1, 2) < Community(1, 3) < Community(2, 0)

    def test_parse_communities_skips_malformed_tokens(self):
        out = parse_communities("13030:51904 junk 2914:420 9:9:9")
        assert out == (Community(13030, 51904), Community(2914, 420))

    def test_communities_from_asn(self):
        cs = (Community(1, 1), Community(2, 2), Community(1, 3))
        assert communities_from_asn(cs, 1) == (Community(1, 1), Community(1, 3))


class TestMessages:
    def test_withdrawal_with_path_rejected(self):
        with pytest.raises(ValueError):
            BGPUpdate(
                time=0.0, collector="c", peer_asn=1, prefix="p",
                elem_type=ElemType.WITHDRAWAL, as_path=(1, 2),
            )

    def test_announcement_without_path_rejected(self):
        with pytest.raises(ValueError):
            BGPUpdate(
                time=0.0, collector="c", peer_asn=1, prefix="p",
                elem_type=ElemType.ANNOUNCEMENT,
            )

    def test_invalid_afi_rejected(self):
        with pytest.raises(ValueError):
            _announce(afi=5)

    def test_origin_asn(self):
        assert _announce(path=(1, 2, 3)).origin_asn == 3
        assert _withdraw().origin_asn is None

    def test_state_message_transitions(self):
        loss = BGPStateMessage(
            time=0.0, collector="c", peer_asn=1,
            old_state=SessionState.ESTABLISHED, new_state=SessionState.IDLE,
        )
        assert loss.is_session_loss and not loss.is_session_recovery
        recovery = BGPStateMessage(
            time=1.0, collector="c", peer_asn=1,
            old_state=SessionState.IDLE, new_state=SessionState.ESTABLISHED,
        )
        assert recovery.is_session_recovery and not recovery.is_session_loss

    def test_update_batch_partition(self):
        batch = UpdateBatch()
        batch.append(_announce(time=2.0))
        batch.append(_withdraw(time=1.0))
        assert len(batch) == 2
        assert len(batch.announcements()) == 1
        assert len(batch.withdrawals()) == 1
        assert [e.time for e in batch.sorted()] == [1.0, 2.0]


class TestSanitize:
    def test_private_asn_ranges(self):
        assert is_private_asn(64512)
        assert is_private_asn(65000)
        assert is_private_asn(4200000000)
        assert not is_private_asn(3356)

    def test_special_purpose(self):
        assert is_special_purpose_asn(0)
        assert is_special_purpose_asn(23456)
        assert is_special_purpose_asn(65535)
        assert not is_special_purpose_asn(174)

    def test_prepending_is_not_a_loop(self):
        assert not has_as_loop((1, 2, 2, 2, 3))

    def test_real_loop_detected(self):
        assert has_as_loop((1, 2, 3, 2))

    def test_deprepend(self):
        assert deprepend((1, 2, 2, 3, 3, 3)) == (1, 2, 3)

    def test_sanitize_removes_prepending(self):
        assert sanitize_path((10, 20, 20, 30)) == (10, 20, 30)

    def test_sanitize_discards_loops(self):
        assert sanitize_path((1, 2, 1)) is None

    def test_sanitize_discards_private_asn(self):
        assert sanitize_path((10, 64512, 30)) is None

    def test_sanitize_discards_empty(self):
        assert sanitize_path(()) is None


class TestRib:
    def test_announce_then_lookup(self):
        rib = RoutingInformationBase("rrc00")
        rib.apply(_announce())
        entry = rib.lookup(100, "10.0.0.0/24")
        assert entry is not None and entry.as_path == (100, 200, 300)

    def test_withdrawal_removes_entry(self):
        rib = RoutingInformationBase("rrc00")
        rib.apply(_announce())
        rib.apply(_withdraw())
        assert rib.lookup(100, "10.0.0.0/24") is None
        assert len(rib) == 0

    def test_reannouncement_replaces(self):
        rib = RoutingInformationBase("rrc00")
        rib.apply(_announce(path=(100, 200, 300)))
        rib.apply(_announce(time=5.0, path=(100, 400, 300)))
        entry = rib.lookup(100, "10.0.0.0/24")
        assert entry is not None and entry.as_path == (100, 400, 300)

    def test_wrong_collector_rejected(self):
        rib = RoutingInformationBase("rrc00")
        with pytest.raises(ValueError):
            rib.apply(_announce(collector="route-views2"))

    def test_drop_peer(self):
        rib = RoutingInformationBase("rrc00")
        rib.apply(_announce(peer=100))
        rib.apply(_announce(peer=200, prefix="10.1.0.0/24", path=(200, 300)))
        assert rib.drop_peer(100) == 1
        assert rib.peer_asns() == {200}

    def test_snapshot_emits_rib_elements(self):
        rib = RoutingInformationBase("rrc00")
        rib.apply(_announce())
        snap = rib.snapshot_updates(99.0)
        assert len(snap) == 1
        assert snap[0].elem_type is ElemType.RIB
        assert snap[0].time == 99.0


class TestCollector:
    def _collector(self, lag=False):
        return Collector(
            name="rrc00",
            peers=[CollectorPeer(peer_asn=100, collector="rrc00")],
            apply_lag=lag,
        )

    def test_observe_feeds_rib(self):
        coll = self._collector()
        out = coll.observe(_announce())
        assert out is not None and out.time == 0.0
        assert len(coll.rib) == 1

    def test_unknown_peer_rejected(self):
        coll = self._collector()
        with pytest.raises(ValueError):
            coll.observe(_announce(peer=999))

    def test_publication_lag_bounds(self):
        coll = self._collector(lag=True)
        out = coll.observe(_announce(time=1000.0))
        assert out is not None
        assert 1300.0 <= out.time <= 1900.0

    def test_session_loss_drops_routes_and_blocks_updates(self):
        coll = self._collector()
        coll.observe(_announce())
        msg = coll.set_session(100, up=False, time=5.0)
        assert msg.is_session_loss
        assert len(coll.rib) == 0
        assert coll.observe(_announce(time=6.0)) is None

    def test_session_recovery(self):
        coll = self._collector()
        coll.set_session(100, up=False, time=5.0)
        msg = coll.set_session(100, up=True, time=9.0)
        assert msg.is_session_recovery
        assert coll.observe(_announce(time=10.0)) is not None

    def test_publish_yields_the_feed_and_drops_lost_updates(self):
        coll = self._collector()
        coll.set_session(100, up=False, time=1.0)
        updates = [_announce(time=2.0), _announce(time=4.0)]
        assert list(coll.publish(updates)) == []  # session down: lost
        coll.set_session(100, up=True, time=5.0)
        published = list(coll.publish([_announce(time=6.0, prefix="10.1.0.0/24")]))
        assert [u.time for u in published] == [6.0]
        assert len(coll.rib) == 1


class TestStream:
    def test_merge_is_time_sorted(self):
        stream = BGPStream()
        stream.push(_announce(time=5.0))
        stream.push(_announce(time=1.0, collector="route-views2"))
        stream.push(_announce(time=3.0))
        times = [e.sort_key()[0] for e in stream.drain()]
        assert times == [1.0, 3.0, 5.0]

    def test_drain_until(self):
        stream = BGPStream.from_elements(
            [_announce(time=t) for t in (1.0, 2.0, 3.0, 4.0)]
        )
        early = list(stream.drain_until(2.5))
        assert len(early) == 2
        assert len(stream) == 2

    def test_pop_empty_returns_none(self):
        assert BGPStream().pop() is None

    def test_split_by_type(self):
        state = BGPStateMessage(
            time=0.0, collector="c", peer_asn=1,
            old_state=SessionState.ESTABLISHED, new_state=SessionState.IDLE,
        )
        updates, states = split_by_type([_announce(), state])
        assert len(updates) == 1 and len(states) == 1

    def test_stable_order_for_equal_keys(self):
        # Equal sort keys must not raise (heap falls back to counter).
        a = _announce(time=1.0)
        b = _announce(time=1.0)
        stream = BGPStream.from_elements([a, b])
        assert len(list(stream.drain())) == 2

    def test_late_pushes_counted_not_reordered(self):
        stream = BGPStream()
        stream.push(_announce(time=5.0))
        assert stream.pop() is not None
        # Below the last released time: history cannot be rewritten —
        # the element still pops (next), but the violation is counted.
        stream.push(_announce(time=2.0))
        assert stream.late_pushes == 1
        late = stream.pop()
        assert late is not None and late.time == 2.0
        # At or after the last released time is not late.
        stream.push(_announce(time=5.0))
        assert stream.late_pushes == 1
