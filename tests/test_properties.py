"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ecdf import ecdf, quantile
from repro.bgp.communities import Community, parse_communities
from repro.bgp.sanitize import deprepend, has_as_loop, sanitize_path
from repro.bgp.stream import BGPStream
from repro.bgp.messages import BGPUpdate, ElemType
from repro.geo.cluster import cluster_points
from repro.geo.distance import haversine_km

asn_strategy = st.integers(min_value=0, max_value=0xFFFF)
value_strategy = st.integers(min_value=0, max_value=0xFFFF)
lat_strategy = st.floats(min_value=-89.9, max_value=89.9, allow_nan=False)
lon_strategy = st.floats(min_value=-179.9, max_value=179.9, allow_nan=False)
path_strategy = st.lists(
    st.integers(min_value=1, max_value=60000), min_size=1, max_size=12
)


class TestCommunityProperties:
    @given(asn_strategy, value_strategy)
    def test_parse_format_roundtrip(self, asn, value):
        community = Community(asn, value)
        assert Community.parse(str(community)) == community

    @given(st.lists(st.tuples(asn_strategy, value_strategy), max_size=8))
    def test_parse_communities_roundtrip(self, pairs):
        text = " ".join(f"{a}:{v}" for a, v in pairs)
        parsed = parse_communities(text)
        assert list(parsed) == [Community(a, v) for a, v in pairs]


class TestDistanceProperties:
    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    def test_symmetry_and_nonnegativity(self, lat1, lon1, lat2, lon2):
        d1 = haversine_km(lat1, lon1, lat2, lon2)
        d2 = haversine_km(lat2, lon2, lat1, lon1)
        assert d1 >= 0.0
        assert abs(d1 - d2) < 1e-6

    @given(lat_strategy, lon_strategy)
    def test_identity(self, lat, lon):
        assert haversine_km(lat, lon, lat, lon) < 1e-6

    @given(
        lat_strategy, lon_strategy, lat_strategy, lon_strategy,
        lat_strategy, lon_strategy,
    )
    @settings(max_examples=50)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        d12 = haversine_km(lat1, lon1, lat2, lon2)
        d23 = haversine_km(lat2, lon2, lat3, lon3)
        d13 = haversine_km(lat1, lon1, lat3, lon3)
        assert d13 <= d12 + d23 + 1e-6


class TestSanitizeProperties:
    @given(path_strategy)
    def test_deprepend_idempotent(self, path):
        once = deprepend(path)
        assert deprepend(once) == once

    @given(path_strategy)
    def test_deprepend_no_consecutive_duplicates(self, path):
        out = deprepend(path)
        assert all(a != b for a, b in zip(out, out[1:]))

    @given(path_strategy)
    def test_sanitized_paths_are_loop_free(self, path):
        clean = sanitize_path(path)
        if clean is not None:
            assert not has_as_loop(clean)
            assert len(set(clean)) == len(clean)

    @given(path_strategy)
    def test_deprepend_preserves_as_set(self, path):
        assert set(deprepend(path)) == set(path)


class TestClusterProperties:
    coords = st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=4),
        st.tuples(lat_strategy, lon_strategy),
        min_size=1,
        max_size=10,
    )

    @given(coords)
    @settings(max_examples=40)
    def test_partition(self, points):
        clusters = cluster_points(points, radius_km=50.0)
        members = [m for c in clusters for m in c]
        assert sorted(members) == sorted(points)
        assert len(members) == len(set(members))

    @given(coords)
    @settings(max_examples=40)
    def test_close_pairs_share_cluster(self, points):
        clusters = cluster_points(points, radius_km=50.0)
        index = {m: i for i, c in enumerate(clusters) for m in c}
        names = sorted(points)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                d = haversine_km(*points[a], *points[b])
                if d <= 50.0:
                    assert index[a] == index[b]

    @given(coords)
    @settings(max_examples=20)
    def test_radius_monotonicity(self, points):
        small = cluster_points(points, radius_km=10.0)
        large = cluster_points(points, radius_km=1000.0)
        assert len(large) <= len(small)


class TestEcdfProperties:
    values = st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )

    @given(values)
    def test_ecdf_monotone_and_bounded(self, xs):
        points = ecdf(xs)
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        vals = [v for v, _ in points]
        assert vals == sorted(vals)

    @given(values, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_range(self, xs, q):
        result = quantile(xs, q)
        assert min(xs) <= result <= max(xs)

    @given(values)
    def test_median_between_extremes(self, xs):
        assert min(xs) <= quantile(xs, 0.5) <= max(xs)


class TestStreamProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), max_size=30))
    def test_stream_outputs_sorted(self, times):
        stream = BGPStream()
        for i, t in enumerate(times):
            stream.push(
                BGPUpdate(
                    time=t,
                    collector="c",
                    peer_asn=1,
                    prefix=f"10.0.{i % 256}.0/24",
                    elem_type=ElemType.ANNOUNCEMENT,
                    as_path=(1, 2),
                )
            )
        out = [e.time for e in stream.drain()]
        assert out == sorted(out)
        assert len(out) == len(times)


class TestMonitorProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=30)
    def test_signal_fraction_consistency(self, baseline_n, divert_n):
        """Signals fire iff the diverted fraction crosses Tfail."""
        from repro.core.input import PoPTag, TaggedPath
        from repro.core.monitor import MonitorParams, OutageMonitor
        from repro.docmine.dictionary import PoP, PoPKind

        divert_n = min(divert_n, baseline_n)
        pop = PoP(PoPKind.FACILITY, "x")
        monitor = OutageMonitor(MonitorParams(t_fail=0.25))
        for i in range(baseline_n):
            key = ("c", 1, f"p{i}")
            monitor.prime(
                TaggedPath(
                    key=key, time=0.0, elem_type=ElemType.ANNOUNCEMENT,
                    as_path=(1, 5, 9),
                    tags=(PoPTag(pop=pop, near_asn=5, far_asn=9),), afi=4,
                )
            )
        for i in range(divert_n):
            monitor.observe(
                TaggedPath(
                    key=("c", 1, f"p{i}"), time=10.0,
                    elem_type=ElemType.WITHDRAWAL, as_path=(), tags=(), afi=4,
                )
            )
        signals = monitor.close_bin()
        expected = (divert_n / baseline_n) >= 0.25 and divert_n > 0
        assert bool(signals) == expected
        for signal in signals:
            assert 0.0 < signal.fraction <= 1.0
