"""Chaos suite: faulted supervised runtimes are byte-identical to clean runs.

Deterministic faults (:mod:`repro.pipeline.faults`) — SIGKILLed
workers, stalled queues, corrupted wire batches, tampered control
messages — are injected into every parallel runtime, and the
supervised detector (``KeplerParams(supervised=True)``) must produce
records, signal log, rejects and telemetry-stripped checkpoint bytes
identical to the unfaulted in-process chain, with the recovery visible
in ``PipelineMetrics`` (restarts, replayed elements, recovery time)
rather than silent.  Restart exhaustion must degrade to the in-process
fallback and still finish the stream; unsupervised runtimes must
surface rich diagnostics (exit codes, queue depths) and quarantine
poisoned batches into an inspectable dead-letter buffer instead of
dying on them.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_pipeline_equivalence import (
    FIRST_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro.core.kepler import Kepler, KeplerParams, RecoveryPolicy
from repro.pipeline import (
    FaultPlan,
    FaultSpec,
    WorkerDeathError,
    fork_available,
    strip_checkpoint_telemetry,
)
from repro.pipeline import faults
from repro.scenarios import World, build_world

pytestmark = pytest.mark.skipif(
    not fork_available(),
    reason="the chaos suite targets the fork-based runtimes",
)

END_TIME = 80_000.0
#: Small IPC batches so element-count faults land inside shipped batches.
PROCESS = dict(process_workers=2, process_batch=128)
SHARDED = dict(shard_processes=2, process_batch=128)
INGEST = dict(ingest_feeds=2)

#: Fast-recovery policy for tests: frequent micro-checkpoints, short
#: backoff, a stall detector quick enough for CI.
POLICY = dict(
    checkpoint_interval=512,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
    stall_timeout_s=5.0,
    teardown_deadline_s=0.5,
)

chaos_settings = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


@pytest.fixture(scope="module")
def linear_run(world_a) -> tuple[tuple, str]:
    """The unfaulted in-process ground truth: outputs + stripped snapshot."""
    world, snapshot, elements = world_a
    detector = make_kepler(world, KeplerParams())
    detector.prime(snapshot)
    detector.process(elements)
    detector.finalize(end_time=END_TIME)
    doc = json.dumps(
        strip_checkpoint_telemetry(detector.snapshot()), sort_keys=True
    )
    return observed(detector), doc


def make_kepler(world: World, params: KeplerParams) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator(),
    )


def observed(detector: Kepler) -> tuple[list, list, list]:
    return (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
        [(c.pop, c.bin_start) for c in detector.rejected],
    )


def supervised_params(runtime: dict, **overrides) -> KeplerParams:
    return KeplerParams(
        supervised=True,
        recovery=RecoveryPolicy(**{**POLICY, **overrides}),
        **runtime,
    )


def faulted_run(
    world_a,
    params: KeplerParams,
    plan: FaultPlan,
    snapshot_doc: bool = False,
) -> tuple[tuple, dict, str | None]:
    """Full supervised (or not) run under an installed fault plan.

    Returns ``(observed, recovery_snapshot, stripped_snapshot_json)``.
    """
    world, snapshot, elements = world_a
    with faults.injected(plan):
        detector = make_kepler(world, params)
        try:
            detector.prime(snapshot)
            detector.process(elements)
            detector.finalize(end_time=END_TIME)
            recovery = detector.metrics.snapshot()["recovery"]
            doc = (
                json.dumps(
                    strip_checkpoint_telemetry(detector.snapshot()),
                    sort_keys=True,
                )
                if snapshot_doc
                else None
            )
            return observed(detector), recovery, doc
        finally:
            detector.close()


# ----------------------------------------------------------------------
class TestKillRecovery:
    """SIGKILL at an arbitrary element cut point, every runtime."""

    @chaos_settings
    @given(at_element=st.integers(min_value=1, max_value=4000))
    def test_tag_worker_kill_is_byte_exact(self, world_a, linear_run, at_element):
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="kill", at_element=at_element, worker_id=0)]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(PROCESS), plan
        )
        assert got == linear_run[0]
        assert recovery["restarts"] >= 1
        assert recovery["recovery_ms"] > 0.0
        assert not recovery["degraded"]

    @chaos_settings
    @given(at_element=st.integers(min_value=1, max_value=4000))
    def test_shard_worker_kill_is_byte_exact(self, world_a, linear_run, at_element):
        plan = FaultPlan(
            [FaultSpec(scope="shard", kind="kill", at_element=at_element, worker_id=1)]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(SHARDED), plan
        )
        assert got == linear_run[0]
        assert recovery["restarts"] >= 1
        assert recovery["replayed_elements"] >= 0

    # Feed workers are per-run (one run per supervised chunk), so the
    # armed element clock resets per run: keep the cut point low enough
    # to land inside the first run a feed worker sees.  Collector->feed
    # hashing can leave a feed empty, so arm every feed worker rather
    # than pinning one — only workers that actually see elements fire.
    @chaos_settings
    @given(at_element=st.integers(min_value=1, max_value=500))
    def test_feed_worker_kill_is_byte_exact(self, world_a, linear_run, at_element):
        plan = FaultPlan(
            [FaultSpec(scope="feed", kind="kill", at_element=at_element)]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(INGEST), plan
        )
        assert got == linear_run[0]
        assert recovery["restarts"] >= 1

    def test_kill_during_replay_still_converges(self, world_a, linear_run):
        """A second kill while replaying the journal costs one more restart."""
        plan = FaultPlan(
            [
                FaultSpec(scope="tag", kind="kill", at_element=600, worker_id=0),
                FaultSpec(scope="tag", kind="kill", at_element=300, worker_id=1),
            ]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(PROCESS), plan
        )
        assert got == linear_run[0]
        assert recovery["restarts"] >= 2
        assert not recovery["degraded"]


class TestStallRecovery:
    def test_hung_worker_detected_and_replayed(self, world_a, linear_run):
        plan = FaultPlan(
            [
                FaultSpec(
                    scope="tag",
                    kind="stall",
                    at_element=700,
                    worker_id=0,
                    stall_s=3.0,
                )
            ]
        )
        got, recovery, _ = faulted_run(
            world_a,
            supervised_params(PROCESS, stall_timeout_s=0.5),
            plan,
        )
        assert got == linear_run[0]
        assert recovery["restarts"] >= 1
        assert recovery["recovery_ms"] > 0.0


class TestQuarantine:
    def test_unsupervised_corrupt_batch_is_dead_lettered(self, world_a):
        """No supervisor: skip the poisoned batch, keep streaming."""
        world, snapshot, elements = world_a
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="corrupt", at_element=900, worker_id=0)]
        )
        with faults.injected(plan):
            detector = make_kepler(world, KeplerParams(**PROCESS))
            try:
                detector.prime(snapshot)
                detector.process(elements)
                detector.finalize(end_time=END_TIME)
                recovery = detector.metrics.snapshot()["recovery"]
                assert recovery["quarantined_batches"] >= 1
                letters = list(detector.stages.pipeline.dead_letters)
                assert letters, "dead-letter buffer must be inspectable"
                assert {"signature", "codec", "payload", "detail"} <= set(
                    letters[0]
                )
                assert "Traceback" in letters[0]["detail"]
            finally:
                detector.close()

    def test_supervised_corrupt_batch_is_rolled_back(self, world_a, linear_run):
        """Supervised: quarantine becomes rollback + replay, byte-exact."""
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="corrupt", at_element=900, worker_id=0)]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(PROCESS), plan
        )
        assert got == linear_run[0]
        assert recovery["quarantined_batches"] >= 1
        assert recovery["restarts"] >= 1

    def test_supervised_shard_corrupt_is_rolled_back(self, world_a, linear_run):
        """Broadcast batch: every replica skips it consistently."""
        plan = FaultPlan(
            [FaultSpec(scope="shard", kind="corrupt", at_element=900)]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(SHARDED), plan
        )
        assert got == linear_run[0]
        assert recovery["quarantined_batches"] >= 1


class TestControlFaults:
    def test_dropped_ack_recovers_via_stall_detector(self, world_a, linear_run):
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="drop_ctl", at_element=1, worker_id=0)]
        )
        got, recovery, _ = faulted_run(
            world_a,
            supervised_params(PROCESS, stall_timeout_s=0.5),
            plan,
        )
        assert got == linear_run[0]
        assert recovery["restarts"] >= 1

    def test_duplicated_ack_is_deduped_without_recovery(self, world_a, linear_run):
        """Barriers key acks by worker id: a dup must change nothing."""
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="dup_ctl", at_element=1, worker_id=0)]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(PROCESS), plan
        )
        assert got == linear_run[0]
        assert recovery["restarts"] == 0

    def test_duplicated_shard_ack_is_deduped(self, world_a, linear_run):
        plan = FaultPlan(
            [FaultSpec(scope="shard", kind="dup_ctl", at_element=1, worker_id=0)]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(SHARDED), plan
        )
        assert got == linear_run[0]
        assert recovery["restarts"] == 0


class TestGracefulDegradation:
    def test_persistent_kill_degrades_to_linear_and_finishes(
        self, world_a, linear_run
    ):
        """A fault that re-fires every generation exhausts the budget;
        the stream must still finish — linearly — with identical output."""
        plan = FaultPlan(
            [
                FaultSpec(
                    scope="tag",
                    kind="kill",
                    at_element=400,
                    worker_id=0,
                    once=False,
                )
            ]
        )
        got, recovery, _ = faulted_run(
            world_a, supervised_params(PROCESS, max_restarts=1), plan
        )
        assert got == linear_run[0]
        assert recovery["degraded"] is True
        assert recovery["restarts"] >= 2

    def test_degrade_false_reraises_after_budget(self, world_a):
        world, snapshot, elements = world_a
        plan = FaultPlan(
            [
                FaultSpec(
                    scope="tag",
                    kind="kill",
                    at_element=400,
                    worker_id=0,
                    once=False,
                )
            ]
        )
        with faults.injected(plan):
            detector = make_kepler(
                world,
                supervised_params(PROCESS, max_restarts=1, degrade=False),
            )
            try:
                with pytest.raises(WorkerDeathError):
                    detector.prime(snapshot)
                    detector.process(elements)
            finally:
                detector.close()


class TestCheckpointByteIdentity:
    @chaos_settings
    @given(at_element=st.integers(min_value=1, max_value=4000))
    def test_faulted_snapshot_equals_linear_snapshot(
        self, world_a, linear_run, at_element
    ):
        """Telemetry-stripped checkpoint bytes survive a mid-stream crash."""
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="kill", at_element=at_element, worker_id=0)]
        )
        got, recovery, doc = faulted_run(
            world_a, supervised_params(PROCESS), plan, snapshot_doc=True
        )
        assert recovery["restarts"] >= 1
        assert got == linear_run[0]
        assert doc == linear_run[1]

    def test_degraded_snapshot_equals_linear_snapshot(self, world_a, linear_run):
        plan = FaultPlan(
            [
                FaultSpec(
                    scope="tag",
                    kind="kill",
                    at_element=400,
                    worker_id=0,
                    once=False,
                )
            ]
        )
        got, recovery, doc = faulted_run(
            world_a,
            supervised_params(PROCESS, max_restarts=1),
            plan,
            snapshot_doc=True,
        )
        assert recovery["degraded"] is True
        assert got == linear_run[0]
        assert doc == linear_run[1]


class TestUnsupervisedDiagnostics:
    def test_worker_death_error_carries_diagnostics(self, world_a):
        """Without a supervisor the death surfaces with exit codes and
        queue depths — the unified liveness vocabulary."""
        world, snapshot, elements = world_a
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="kill", at_element=200, worker_id=0)]
        )
        with faults.injected(plan):
            detector = make_kepler(world, KeplerParams(**PROCESS))
            try:
                with pytest.raises(WorkerDeathError) as info:
                    detector.prime(snapshot)
                    detector.process(elements)
                    detector.finalize(end_time=END_TIME)
            finally:
                detector.close()
        assert info.value.dead, "dead worker list must not be empty"
        assert all(code == -9 for _, code in info.value.dead)
        assert info.value.queue_depths, "queue depth sample missing"
        assert "exitcode -9" in str(info.value)

    def test_close_after_death_is_clean(self, world_a):
        world, snapshot, elements = world_a
        plan = FaultPlan(
            [FaultSpec(scope="shard", kind="kill", at_element=200, worker_id=0)]
        )
        with faults.injected(plan):
            detector = make_kepler(world, KeplerParams(**SHARDED))
            with pytest.raises(WorkerDeathError):
                detector.prime(snapshot)
                detector.process(elements)
                detector.finalize(end_time=END_TIME)
            detector.close()
            detector.close()  # idempotent after a crash teardown
