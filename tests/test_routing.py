"""Tests for the policy routing simulator."""

from __future__ import annotations

import pytest

from repro.bgp.messages import ElemType
from repro.routing.engine import CollectorLayout, EngineParams, RoutingEngine
from repro.routing.events import (
    ASFailure,
    ASRecovery,
    FacilityFailure,
    FacilityRecovery,
    IXPFailure,
    LinkFailure,
    PartialFacilityFailure,
)
from repro.routing.interconnection import (
    FailureState,
    InterconnectKind,
    build_adjacencies,
)
from repro.routing.policy import AdjacencyIndex, PathClass, compute_routes, is_valley_free
from repro.routing.tagging import tag_path
from repro.bgp.communities import Community


@pytest.fixture()
def small_engine(small_topo):
    layout = CollectorLayout({"rrc00": (10, 20)})
    return RoutingEngine(small_topo, layout=layout, params=EngineParams(seed=0))


class TestAdjacencies:
    def test_transit_links_have_pnis(self, small_topo):
        adj = build_adjacencies(small_topo)
        pair = frozenset((10, 30))
        assert pair in adj
        kinds = {ic.kind for ic in adj[pair].interconnections}
        assert InterconnectKind.PNI in kinds

    def test_ixp_peering_realised_over_fabric(self, small_topo):
        adj = build_adjacencies(small_topo)
        pair = frozenset((20, 40))
        assert pair in adj
        ics = adj[pair].interconnections
        assert any(ic.ixp_id == "ix1" for ic in ics)
        ix_ic = next(ic for ic in ics if ic.ixp_id == "ix1")
        # AS20's port is in f1, AS40's in f2.
        assert ix_ic.facility_of(20) == "f1"
        assert ix_ic.facility_of(40) == "f2"

    def test_facility_failure_kills_pni(self, small_topo):
        adj = build_adjacencies(small_topo)
        failures = FailureState(facilities={"f1"})
        assert adj[frozenset((10, 30))].select(failures) is None

    def test_ixp_link_survives_other_segment_failure(self, small_topo):
        adj = build_adjacencies(small_topo)
        # 30-50 peer over ix1 with ports in f1 and f2: f3 failing is
        # irrelevant; f1 failing kills it.
        pair = frozenset((30, 50))
        assert adj[pair].select(FailureState(facilities={"f3"})) is not None
        assert adj[pair].select(FailureState(facilities={"f1"})) is None

    def test_ixp_failure_kills_public_peering_only(self, small_topo):
        adj = build_adjacencies(small_topo)
        failures = FailureState(ixps={"ix1"})
        assert adj[frozenset((20, 40))].select(failures) is None
        assert adj[frozenset((10, 30))].select(failures) is not None

    def test_partial_presence_failure(self, small_topo):
        adj = build_adjacencies(small_topo)
        failures = FailureState(presences={("f1", 30)})
        assert adj[frozenset((10, 30))].select(failures) is None
        # Other tenants of f1 unaffected.
        assert adj[frozenset((10, 20))].select(failures) is not None

    def test_link_failure_state(self, small_topo):
        adj = build_adjacencies(small_topo)
        failures = FailureState(links={frozenset((10, 30))})
        assert adj[frozenset((10, 30))].select(failures) is None

    def test_as_failure_state(self, small_topo):
        adj = build_adjacencies(small_topo)
        failures = FailureState(ases={10})
        for pair in adj:
            if 10 in pair:
                assert adj[pair].select(failures) is None

    def test_preference_pni_over_ixp(self, small_topo):
        # Give 20-40 a PNI as well; it must win over the IXP path.
        small_topo.pnis[frozenset((20, 40))] = {"f1"}
        small_topo.as_facilities[40].add("f1")
        small_topo.facility_tenants["f1"].add(40)
        adj = build_adjacencies(small_topo)
        chosen = adj[frozenset((20, 40))].select(FailureState())
        assert chosen is not None and chosen.kind is InterconnectKind.PNI


class TestPolicyRouting:
    def test_all_ases_reach_origin_when_healthy(self, small_topo):
        adj = build_adjacencies(small_topo)
        index = AdjacencyIndex(small_topo, adj)
        index.set_failures(FailureState())
        routes = compute_routes(index, 30)
        assert set(routes) == set(small_topo.ases)

    def test_paths_are_valley_free(self, small_topo):
        adj = build_adjacencies(small_topo)
        index = AdjacencyIndex(small_topo, adj)
        index.set_failures(FailureState())
        for origin in small_topo.ases:
            for asn, info in compute_routes(index, origin).items():
                assert is_valley_free(info.path, small_topo), (
                    f"valley in {info.path}"
                )

    def test_customer_route_preferred_over_provider(self, small_topo):
        adj = build_adjacencies(small_topo)
        index = AdjacencyIndex(small_topo, adj)
        index.set_failures(FailureState())
        # AS10 reaches its customer AS30 directly (customer route), even
        # though a longer path could exist.
        routes = compute_routes(index, 30)
        assert routes[10].path == (10, 30)
        assert routes[10].path_class is PathClass.CUSTOMER

    def test_peer_route_used_when_no_customer_route(self, small_topo):
        adj = build_adjacencies(small_topo)
        index = AdjacencyIndex(small_topo, adj)
        index.set_failures(FailureState())
        routes = compute_routes(index, 40)
        # AS20 reaches AS40 via its peer link.
        assert routes[20].path == (20, 40)
        assert routes[20].path_class is PathClass.PEER

    def test_down_origin_unreachable(self, small_topo):
        adj = build_adjacencies(small_topo)
        index = AdjacencyIndex(small_topo, adj)
        index.set_failures(FailureState())
        assert compute_routes(index, 30, down_ases=frozenset({30})) == {}

    def test_failure_forces_reroute_or_withdrawal(self, small_topo):
        adj = build_adjacencies(small_topo)
        index = AdjacencyIndex(small_topo, adj)
        failures = FailureState(facilities={"f1"})
        index.set_failures(failures)
        routes = compute_routes(index, 30)
        # AS30's only physical attachments are in f1: unreachable.
        assert 10 not in routes or 30 not in routes[10].path

    def test_valley_free_checker_rejects_valley(self, small_topo):
        # provider -> customer -> provider is a valley: 20 <- 10 -> 30
        # read as path (20, 10, 30) is fine (up then down)... but
        # (30, 10, 20) is also up-down.  A true valley: (10, 30, 50)
        # where 30-50 are peers and 10 is 30's provider: peer after
        # down is invalid.
        assert not is_valley_free((10, 30, 50), small_topo)


class TestTagging:
    def _route(self, engine, vantage, origin):
        state = engine.route(vantage, origin)
        assert state is not None
        return state

    def test_facility_tags_attached(self, small_engine, small_topo):
        state = self._route(small_engine, 10, 30)
        tags = tag_path(small_topo, state.path, state.interconnections)
        # AS10 received at f1 from AS30: community 10:101.
        assert Community(10, 101) in tags

    def test_route_server_marker_on_ixp_paths(self, small_engine, small_topo):
        state = self._route(small_engine, 20, 40)
        assert any(ic.ixp_id == "ix1" for ic in state.interconnections)
        tags = tag_path(small_topo, state.path, state.interconnections)
        assert any(c.asn == 59900 for c in tags)

    def test_no_tags_from_community_free_as(self, small_topo, small_engine):
        state = self._route(small_engine, 10, 60)
        tags = tag_path(small_topo, state.path, state.interconnections)
        assert all(c.asn != 60 for c in tags)

    def test_ipv6_tagging_is_deterministic(self, small_engine, small_topo):
        state = self._route(small_engine, 10, 30)
        a = tag_path(small_topo, state.path, state.interconnections, afi=6, prefix="x")
        b = tag_path(small_topo, state.path, state.interconnections, afi=6, prefix="x")
        assert a == b

    def test_mismatched_interconnections_rejected(self, small_topo):
        with pytest.raises(ValueError):
            tag_path(small_topo, (10, 30), ())


class TestEngine:
    def test_initial_routes_cover_vantages(self, small_engine):
        # Both vantage ASes should reach every origin.
        origins = small_engine.origins
        for vantage in (10, 20):
            reached = [o for o in origins if small_engine.route(vantage, o)]
            assert len(reached) == len(origins)

    def test_rib_snapshot_counts(self, small_engine, small_topo):
        snap = small_engine.rib_snapshot(0.0)
        # One v4 prefix per origin, two vantages, all reachable; AS10
        # and AS20 see their own prefix too.
        assert len(snap) == len(small_engine.routes)
        assert all(u.elem_type is ElemType.RIB for u in snap)

    def test_facility_failure_emits_updates(self, small_engine):
        updates = small_engine.apply_event(FacilityFailure("f2"), 100.0)
        assert updates, "no updates after facility failure"
        assert all(u.time >= 100.0 for u in updates)

    def test_failure_then_recovery_restores_routes(self, small_engine):
        before = dict(small_engine.routes)
        small_engine.apply_event(FacilityFailure("f2"), 100.0)
        small_engine.apply_event(FacilityRecovery("f2"), 5000.0)
        # sticky_rate can pin a small fraction; with seed 0 and this
        # small world expect full restoration or near-full.
        restored = sum(
            1 for k, v in before.items() if small_engine.routes.get(k) == v
        )
        assert restored >= len(before) - 2

    def test_withdrawal_when_no_backup(self, small_engine):
        # AS60 is single-homed behind f3.
        updates = small_engine.apply_event(FacilityFailure("f3"), 100.0)
        withdrawals = [
            u for u in updates if u.elem_type is ElemType.WITHDRAWAL
        ]
        assert withdrawals
        assert any(u.prefix == "10.60.0.0/24" for u in withdrawals)

    def test_as_failure_withdraws_origin(self, small_engine):
        updates = small_engine.apply_event(ASFailure(40), 100.0)
        assert any(
            u.elem_type is ElemType.WITHDRAWAL and u.prefix == "10.40.0.0/24"
            for u in updates
        )
        small_engine.apply_event(ASRecovery(40), 1000.0)
        assert small_engine.route(10, 40) is not None

    def test_ixp_failure_moves_peering_to_transit(self, small_engine):
        before = small_engine.route(20, 40)
        assert before is not None and before.path == (20, 40)
        small_engine.apply_event(IXPFailure("ix1"), 100.0)
        after = small_engine.route(20, 40)
        assert after is not None
        assert after.path != (20, 40)
        assert 10 in after.path  # via the transit provider

    def test_reachable_fraction_drops_and_recovers(self, small_engine):
        assert small_engine.reachable_fraction() == pytest.approx(1.0)
        small_engine.apply_event(FacilityFailure("f3"), 100.0)
        assert small_engine.reachable_fraction() < 1.0
        small_engine.apply_event(FacilityRecovery("f3"), 200.0)
        assert small_engine.reachable_fraction() == pytest.approx(1.0)

    def test_partial_failure_scoped_to_listed_ases(self, small_engine):
        small_engine.apply_event(
            PartialFacilityFailure("f1", (30,)), 100.0
        )
        # AS30 lost its transit PNI; AS20's stays up.
        assert small_engine.route(10, 30) is None or 30 not in (
            small_engine.route(10, 30).path
        )
        assert small_engine.route(10, 20) is not None

    def test_link_failure_affects_single_pair(self, small_engine):
        small_engine.apply_event(LinkFailure(30, 50), 100.0)
        # 30 and 50 still reachable via transit.
        assert small_engine.route(10, 30) is not None
        assert small_engine.route(10, 50) is not None

    def test_changes_log_records_events(self, small_engine):
        small_engine.apply_event(FacilityFailure("f2"), 100.0)
        assert small_engine.changes
        assert all(c.time >= 100.0 for c in small_engine.changes)

    def test_collector_layout_default(self, world):
        layout = CollectorLayout.default(world.topo, seed=0)
        peers = layout.all_peers()
        assert len(peers) >= 8
        for peer in peers:
            assert layout.collector_of(peer) in layout.collectors

    def test_layout_unknown_peer_raises(self):
        layout = CollectorLayout({"rrc00": (1,)})
        with pytest.raises(KeyError):
            layout.collector_of(2)
