"""Shared-memory transport: ring protocol, byte-identity, chaos, leaks.

The SPSC ring (:mod:`repro.pipeline.shm`) replaces the queue data
plane of every multiprocess runtime behind
``KeplerParams(transport="shm")`` — and must be a pure execution
detail: same records, signal log and rejects as the queue transport on
every runtime x ingest layout, recoverable under the new torn-write /
stale-cursor faults, and never leaking a ``/dev/shm`` segment across
teardown (including faulted teardown).
"""

from __future__ import annotations

import os

import pytest

from test_pipeline_equivalence import (
    FIRST_WORLD,
    DeterministicValidator,
    prepared,
    record_fields,
)
from repro.core.kepler import Kepler, KeplerParams, RecoveryPolicy
from repro.ingest.feed import split_by_collector
from repro.pipeline import faults, fork_available
from repro.pipeline.faults import FaultPlan, FaultSpec
from repro.pipeline.liveness import RecoverableWorkerError
from repro.pipeline.shm import ShmRing
from repro.scenarios import World, build_world

END_TIME = 80_000.0


class Opaque:
    """A payload marshal rejects (module-level: picklable)."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Opaque) and other.value == self.value


def shm_segments() -> set[str]:
    """Names of the live ``multiprocessing.shared_memory`` segments."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: covered by destroy() tests
        return set()


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must tear down every segment it created."""
    before = shm_segments()
    yield
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


# ----------------------------------------------------------------------
# Ring protocol unit tests (single process, no forks)
# ----------------------------------------------------------------------
class TestRingProtocol:
    def _ring(self, capacity: int = 4096) -> ShmRing:
        ring = ShmRing(capacity=capacity)
        self._rings.append(ring)
        return ring

    @pytest.fixture(autouse=True)
    def _cleanup(self):
        self._rings: list[ShmRing] = []
        yield
        for ring in self._rings:
            ring.destroy()

    def test_flat_batch_roundtrip(self):
        ring = self._ring()
        batch = (b"\x01\x02\x03", [1.0, 2.0, 3.5], ["a", "b", "c"], [None, 7, (1, 2)])
        assert ring.try_put(("batch", 42), batch)
        frame = ring.get()
        assert frame.header() == ("batch", 42)
        kinds, *columns = frame.batch()
        assert bytes(kinds) == b"\x01\x02\x03"
        assert columns == [[1.0, 2.0, 3.5], ["a", "b", "c"], [None, 7, (1, 2)]]
        frame.release()
        assert ring.occupancy() == 0 and ring.get() is None

    def test_borrowed_kinds_vs_copied_kinds(self):
        ring = self._ring()
        ring.put(("batch", 0), (b"\x05\x06", [1], [2]))
        frame = ring.get()
        borrowed = frame.batch()[0]
        assert isinstance(borrowed, memoryview)  # zero-copy sweep lane
        frame.release()
        ring.put(("batch", 1), (b"\x05\x06", [1], [2]))
        frame = ring.get()
        copied = frame.batch(copy_kinds=True)[0]
        frame.release()
        assert isinstance(copied, bytes) and copied == b"\x05\x06"

    def test_header_only_frame(self):
        ring = self._ring()
        watermark = (123.5, "rrc00", 7)
        wires = [["A", 1, "x"], ["W", 2, "y"]]
        ring.put((watermark, wires))
        frame = ring.get()
        assert frame.header() == (watermark, wires)
        assert frame.batch() is None
        frame.release()

    def test_pickle_fallback_roundtrip(self):
        ring = self._ring()
        batch = (b"\x01", [Opaque(3)])  # marshal rejects Opaque
        ring.put(("batch", 9), batch)
        frame = ring.get()
        assert chr(frame.codec) == "P"
        assert frame.header() == ("batch", 9)
        assert frame.batch() == batch
        frame.release()

    def test_wrap_and_wraps_counter(self):
        ring = self._ring(capacity=1024)
        batch = (bytes(range(64)), list(range(64)))
        for seq in range(50):  # frames ~360 B: several wraps in 1 KiB
            ring.put(("batch", seq), batch)
            frame = ring.get()
            assert frame.header() == ("batch", seq)
            kinds, column = frame.batch()
            assert bytes(kinds) == bytes(range(64)) and column == list(range(64))
            frame.release()
        assert ring.wraps() > 0
        assert ring.occupancy() == 0

    def test_backpressure_is_cursor_distance(self):
        ring = self._ring(capacity=1024)
        batch = (bytes(200), list(range(30)))
        published = 0
        while ring.try_put(("batch", published), batch):
            published += 1
        assert 1 < published < 10  # bounded: the ring filled up
        frame = ring.get()
        frame.release()
        assert ring.try_put(("batch", published), batch)  # space reclaimed

    def test_oversize_frame_raises(self):
        ring = self._ring(capacity=1024)
        with pytest.raises(ValueError, match="cannot fit"):
            ring.try_put(("batch", 0), (bytes(4096), []))

    def test_spsc_single_outstanding_frame(self):
        ring = self._ring()
        ring.put(("batch", 0))
        ring.put(("batch", 1))
        frame = ring.get()
        with pytest.raises(RuntimeError, match="not released"):
            ring.get()
        frame.release()
        ring.get().release()

    def test_torn_write_keeps_header_breaks_columns(self):
        ring = self._ring()
        ring.put(("batch", 5), (b"\x01\x02", [1, 2], ["x", "y"]), fault="torn")
        frame = ring.get()
        assert frame.header() == ("batch", 5)  # attributable
        with pytest.raises(Exception):
            frame.batch()  # every column decode fails
        frame.release()

    def test_stale_cursor_loses_the_frame(self):
        ring = self._ring()
        assert ring.try_put(("batch", 0), fault="stale")
        assert ring.occupancy() == 0 and ring.get() is None
        # The next publish lands where the stale frame was written.
        ring.put(("batch", 1))
        frame = ring.get()
        assert frame.header() == ("batch", 1)
        frame.release()

    def test_destroy_is_idempotent_and_unlinks(self):
        ring = ShmRing()
        name = ring.name
        assert name in shm_segments()
        ring.destroy()
        assert name not in shm_segments()
        ring.destroy()  # idempotent
        assert ring.occupancy() == 0 and ring.wraps() == 0  # closed gauges


# ----------------------------------------------------------------------
# Byte-identity across runtimes (forked platforms only)
# ----------------------------------------------------------------------
forked = pytest.mark.skipif(
    not fork_available(),
    reason="the shm transport targets the fork-based runtimes",
)


@pytest.fixture(scope="module")
def world_a() -> tuple[World, list, list]:
    return prepared(
        build_world(seed=FIRST_WORLD.seed, world_params=FIRST_WORLD)
    )


def make_kepler(world: World, params: KeplerParams) -> Kepler:
    return Kepler(
        dictionary=world.dictionary,
        colo=world.colo,
        as2org=world.as2org,
        params=params,
        validator=DeterministicValidator(),
    )


def observed(detector: Kepler) -> tuple[list, list, list]:
    return (
        [record_fields(r) for r in detector.records],
        [
            (c.pop, c.signal_type, c.bin_start, c.bin_end)
            for c in detector.signal_log
        ],
        [(c.pop, c.bin_start) for c in detector.rejected],
    )


def full_run(world_a, params: KeplerParams, by_feeds: bool = False):
    world, snapshot, elements = world_a
    detector = make_kepler(world, params)
    try:
        detector.prime(snapshot)
        if by_feeds:
            detector.process_feeds(split_by_collector(elements))
        else:
            detector.process(elements)
        detector.finalize(end_time=END_TIME)
        return observed(detector)
    finally:
        detector.close()


@forked
class TestTransportIdentity:
    @pytest.mark.parametrize(
        "layout",
        [
            dict(process_workers=2, process_batch=128),
            dict(shard_processes=2, process_batch=128),
        ],
        ids=["process_workers", "shard_processes"],
    )
    def test_runtime_identity(self, world_a, layout):
        queue = full_run(world_a, KeplerParams(transport="queue", **layout))
        assert queue[0], "scenario produced no records to compare"
        shm = full_run(world_a, KeplerParams(transport="shm", **layout))
        assert shm == queue

    def test_ingest_feeds_identity(self, world_a):
        queue = full_run(
            world_a,
            KeplerParams(ingest_feeds=2, transport="queue"),
            by_feeds=True,
        )
        assert queue[0], "scenario produced no records to compare"
        shm = full_run(
            world_a,
            KeplerParams(ingest_feeds=2, transport="shm"),
            by_feeds=True,
        )
        assert shm == queue

    def test_composed_layout_identity(self, world_a):
        """Rings on both tiers at once: feed rings into shard rings."""
        layout = dict(ingest_feeds=2, shard_processes=2, process_batch=128)
        queue = full_run(
            world_a, KeplerParams(transport="queue", **layout), by_feeds=True
        )
        shm = full_run(
            world_a, KeplerParams(transport="shm", **layout), by_feeds=True
        )
        assert shm == queue


# ----------------------------------------------------------------------
# Chaos: torn writes and stale cursors (the new fault seams)
# ----------------------------------------------------------------------
POLICY = dict(
    checkpoint_interval=512,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
    stall_timeout_s=0.5,
    teardown_deadline_s=0.5,
)


def supervised_params(runtime: dict, **overrides) -> KeplerParams:
    return KeplerParams(
        supervised=True,
        transport="shm",
        recovery=RecoveryPolicy(**{**POLICY, **overrides}),
        **runtime,
    )


@forked
class TestShmChaos:
    def test_torn_tag_frame_is_rolled_back_byte_exact(self, world_a):
        linear = full_run(world_a, KeplerParams())
        plan = FaultPlan(
            [FaultSpec(scope="tag", kind="torn_write", at_element=900)]
        )
        with faults.injected(plan):
            world, snapshot, elements = world_a
            detector = make_kepler(
                world,
                supervised_params(dict(process_workers=2, process_batch=128)),
            )
            try:
                detector.prime(snapshot)
                detector.process(elements)
                detector.finalize(end_time=END_TIME)
                recovery = detector.metrics.snapshot()["recovery"]
                assert observed(detector) == linear
                assert recovery["restarts"] >= 1
            finally:
                detector.close()

    def test_stale_shard_frame_recovers_via_stall(self, world_a):
        linear = full_run(world_a, KeplerParams())
        plan = FaultPlan(
            [FaultSpec(scope="shard", kind="stale_cursor", at_element=900)]
        )
        with faults.injected(plan):
            world, snapshot, elements = world_a
            detector = make_kepler(
                world,
                supervised_params(dict(shard_processes=2, process_batch=128)),
            )
            try:
                detector.prime(snapshot)
                detector.process(elements)
                detector.finalize(end_time=END_TIME)
                recovery = detector.metrics.snapshot()["recovery"]
                assert observed(detector) == linear
                assert recovery["restarts"] >= 1
            finally:
                detector.close()

    def test_stale_feed_frame_surfaces_recoverable(self, world_a):
        """A lost feed frame stalls the drain-to-mark wait, then raises."""
        plan = FaultPlan(
            [FaultSpec(scope="feed", kind="stale_cursor", at_element=1)]
        )
        with faults.injected(plan):
            world, snapshot, elements = world_a
            detector = make_kepler(
                world, KeplerParams(ingest_feeds=2, transport="shm")
            )
            try:
                detector.prime(snapshot)
                with pytest.raises(RecoverableWorkerError):
                    detector.process_feeds(split_by_collector(elements))
            finally:
                detector.close()

    def test_torn_feed_frame_surfaces_recoverable(self, world_a):
        plan = FaultPlan(
            [FaultSpec(scope="feed", kind="torn_write", at_element=1)]
        )
        with faults.injected(plan):
            world, snapshot, elements = world_a
            detector = make_kepler(
                world, KeplerParams(ingest_feeds=2, transport="shm")
            )
            try:
                detector.prime(snapshot)
                with pytest.raises(RecoverableWorkerError):
                    detector.process_feeds(split_by_collector(elements))
            finally:
                detector.close()
