"""Tests for the documentation-mining pipeline."""

from __future__ import annotations

import pytest

from repro.bgp.communities import Community
from repro.core.colocation import build_colocation_map
from repro.docmine.corpus import DocumentPage, generate_corpus, render_scheme
from repro.docmine.dictionary import PoPKind, build_dictionary
from repro.docmine.extractor import extract_mentions
from repro.docmine.ner import EntityKind, GazetteerNER
from repro.docmine.scraper import WebScraper
from repro.docmine.tokenizer import normalize_tokens, split_lines, tokenize
from repro.docmine.voice import Voice, classify_voice
from repro.topology.communities import TagKind
from repro.topology.sources import export_datacentermap, export_peeringdb


class TestTokenizer:
    def test_split_lines_strips_remarks_prefix(self):
        text = "remarks:   13030:100 - received at AMS\n\n  plain line  "
        assert split_lines(text) == ["13030:100 - received at AMS", "plain line"]

    def test_tokenize_preserves_communities(self):
        assert "13030:100" in tokenize("13030:100 - received at AMS-IX")

    def test_normalize_tokens_handles_punctuation(self):
        assert normalize_tokens("Harbour Exchange 8&9") == (
            "harbour", "exchange", "8", "9",
        )
        assert normalize_tokens("HARBOUR - EXCHANGE 8 9") == (
            "harbour", "exchange", "8", "9",
        )

    def test_normalize_empty(self):
        assert normalize_tokens("...") == ()


class TestVoice:
    @pytest.mark.parametrize(
        "line",
        [
            "routes received at Telehouse North",
            "prefix learned at AMS-IX",
            "tagged on routes accepted at LINX",
            "route was received at Equinix FR5",
        ],
    )
    def test_passive_lines(self, line):
        assert classify_voice(line) is Voice.PASSIVE

    @pytest.mark.parametrize(
        "line",
        [
            "announce to all peers at LINX",
            "use 100:1 to blackhole traffic",
            "do not announce to AMS-IX",
            "prepend twice at Telehouse North",
        ],
    )
    def test_active_lines(self, line):
        assert classify_voice(line) is Voice.ACTIVE

    def test_unknown_when_no_verbs(self):
        assert classify_voice("communities for customers") is Voice.UNKNOWN

    def test_leading_clause_wins(self):
        line = "routes received from peers we announce to upstreams"
        assert classify_voice(line) is Voice.PASSIVE


class TestExtractor:
    def test_extracts_community_and_residual(self):
        mentions = extract_mentions("13030:51904 - received at LAX1")
        assert len(mentions) == 1
        assert mentions[0].community == Community(13030, 51904)
        assert "received at LAX1" in mentions[0].residual
        assert "13030:51904" not in mentions[0].residual

    def test_expected_asn_filters_foreign_mentions(self):
        text = "our community 10:1 mirrors 20:5 of our upstream"
        mentions = extract_mentions(text, expected_asn=10)
        assert [m.community for m in mentions] == [Community(10, 1)]

    def test_rejects_overlong_values(self):
        assert extract_mentions("9999999:1 received at AMS") == []

    def test_multiple_mentions_per_line(self):
        mentions = extract_mentions("10:1 and 10:2 received at FRA")
        assert len(mentions) == 2

    def test_no_match_inside_longer_number(self):
        mentions = extract_mentions("ref 1:2:3 ignored")
        assert mentions == []


class TestNER:
    def _ner_with(self, facilities=(), ixps=()):
        ner = GazetteerNER()
        for map_id, name in facilities:
            ner.add_facility_name(map_id, name)
        for map_id, name in ixps:
            ner.add_ixp_name(map_id, name)
        return ner

    def test_city_recognition_with_alias(self):
        ner = self._ner_with()
        entities = ner.recognize("received at NYC from peers")
        kinds = {(e.kind, e.canonical_id) for e in entities}
        assert (EntityKind.CITY, "NYC") in kinds

    def test_facility_beats_city_on_overlap(self):
        ner = self._ner_with(facilities=[("map1", "Telehouse London")])
        entities = ner.recognize("received at Telehouse London")
        assert entities[0].kind is EntityKind.FACILITY

    def test_longest_match_wins(self):
        ner = self._ner_with(
            facilities=[("hex", "Harbour Exchange 8&9")],
            ixps=[("lx", "Harbour")],
        )
        entities = ner.recognize("learned at Harbour Exchange 8&9 site")
        assert entities[0].canonical_id == "hex"

    def test_mangled_source_names_match(self):
        # DataCenterMap styles the same building differently.
        ner = self._ner_with(facilities=[("map2", "EQUINIX - AM3")])
        entities = ner.recognize("routes received at equinix am3")
        assert entities and entities[0].canonical_id == "map2"

    def test_no_entities_in_plain_text(self):
        ner = self._ner_with()
        assert ner.recognize("set local-preference 80") == []


class TestCorpusAndDictionary:
    @pytest.fixture(scope="class")
    def mined(self, request):
        from repro.topology.builder import WorldParams, build_topology

        topo = build_topology(WorldParams(seed=5))
        fac_pdb, ixp_pdb = export_peeringdb(topo, seed=5)
        fac_dcm, ixp_dcm = export_datacentermap(topo, seed=5)
        colo = build_colocation_map(fac_pdb + fac_dcm, ixp_pdb + ixp_dcm)
        pages = generate_corpus(topo, seed=5, undocumented_rate=0.0)
        rs_records = {}
        for map_id, mixp in colo.ixps.items():
            for hint in mixp.ixp_id_hints:
                rs_records[topo.ixps[hint].rs_asn] = map_id
        dictionary = build_dictionary(pages, colo, rs_records=rs_records)
        return topo, colo, dictionary

    def test_corpus_covers_documenting_ases(self, mined):
        topo, _, _ = mined
        pages = generate_corpus(topo, seed=5, undocumented_rate=0.0)
        documented = {p.asn for p in pages}
        users = {a for a, r in topo.ases.items() if r.uses_communities}
        assert documented == users

    def test_undocumented_rate_creates_gaps(self, mined):
        topo, _, _ = mined
        pages = generate_corpus(topo, seed=5, undocumented_rate=0.5)
        users = {a for a, r in topo.ases.items() if r.uses_communities}
        assert len({p.asn for p in pages}) < len(users)

    def test_no_outbound_communities_in_dictionary(self, mined):
        topo, _, dictionary = mined
        for asn, rec in topo.ases.items():
            if rec.scheme is None:
                continue
            for value in rec.scheme.outbound:
                assert Community(asn, value) not in dictionary.entries, (
                    f"outbound community {asn}:{value} leaked into dictionary"
                )

    def test_high_precision_against_ground_truth(self, mined):
        topo, colo, dictionary = mined
        correct = wrong = 0
        for asn, rec in topo.ases.items():
            if rec.scheme is None:
                continue
            for value, tag in rec.scheme.ingress.items():
                entry = dictionary.entries.get(Community(asn, value))
                if entry is None:
                    continue
                ok = False
                if tag.kind is TagKind.CITY:
                    ok = (
                        entry.pop.kind is PoPKind.CITY
                        and entry.pop.pop_id == tag.target_id
                    )
                elif tag.kind is TagKind.FACILITY:
                    ok = entry.pop.kind is PoPKind.FACILITY and (
                        tag.target_id
                        in colo.facilities[entry.pop.pop_id].fac_id_hints
                    )
                else:
                    ok = entry.pop.kind is PoPKind.IXP and (
                        tag.target_id in colo.ixps[entry.pop.pop_id].ixp_id_hints
                    )
                correct += ok
                wrong += not ok
        assert correct / (correct + wrong) >= 0.95

    def test_recall_bounded_by_documentation(self, mined):
        topo, _, dictionary = mined
        total = sum(
            len(rec.scheme.ingress)
            for rec in topo.ases.values()
            if rec.scheme is not None
        )
        assert len(dictionary) / total >= 0.80

    def test_rs_asns_resolve_to_ixp_pops(self, mined):
        _, _, dictionary = mined
        for rs_asn, pop in dictionary.rs_asn_to_pop.items():
            assert pop.kind is PoPKind.IXP
            assert dictionary.lookup(Community(rs_asn, 12345)) == pop

    def test_size_by_kind_sums_to_total(self, mined):
        _, _, dictionary = mined
        assert sum(dictionary.size_by_kind().values()) == len(dictionary)

    def test_city_identifier_unification(self, mined):
        # All city entries must use canonical names, never aliases.
        _, _, dictionary = mined
        from repro.geo.cities import city_by_name

        for entry in dictionary.entries.values():
            if entry.pop.kind is PoPKind.CITY:
                city = city_by_name(entry.pop.pop_id)
                assert city is not None
                assert entry.pop.pop_id == city.name


class TestScraper:
    def _pages(self):
        return [
            DocumentPage(asn=1, source="irr", url="u1", text="a"),
            DocumentPage(asn=2, source="web", url="u2", text="b"),
        ]

    def test_crawl_returns_pages(self):
        scraper = WebScraper(self._pages(), failure_rate=0.0)
        assert len(scraper.crawl()) == 2

    def test_unknown_url_404(self):
        scraper = WebScraper(self._pages(), failure_rate=0.0)
        assert scraper.fetch("nope") is None
        assert scraper.failed_fetches == 1

    def test_transient_failures_counted(self):
        scraper = WebScraper(self._pages(), failure_rate=0.99, seed=1)
        scraper.crawl()
        assert scraper.failed_fetches >= 1

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            WebScraper([], failure_rate=1.5)


class TestRenderScheme:
    def test_rendered_text_contains_all_ingress_values(self, small_topo):
        import random

        scheme = small_topo.ases[10].scheme
        assert scheme is not None
        text = render_scheme(random.Random(0), small_topo, scheme)
        for value in scheme.ingress:
            assert f"10:{value}" in text
