"""Unit tests for signal classification and investigation (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.core.colocation import ColocationMap, MapFacility, MapIXP
from repro.core.events import OutageSignal, SignalType
from repro.core.investigation import Investigator
from repro.core.signals import SignalClassification, classify_signals
from repro.docmine.dictionary import PoP, PoPKind

POP_F1 = PoP(PoPKind.FACILITY, "mf1")
POP_IX = PoP(PoPKind.IXP, "mix1")
POP_CITY = PoP(PoPKind.CITY, "London")


def signal(pop, near, links, bin_start=0.0):
    return OutageSignal(
        pop=pop,
        near_asn=near,
        bin_start=bin_start,
        bin_end=bin_start + 60.0,
        diverted_paths=len(links),
        baseline_paths=max(len(links), 1) * 4,
        links=frozenset(links),
    )


def org_map(*asns, org=None):
    return {a: (org or f"org{a}") for a in asns}


class TestClassification:
    def test_few_ases_is_link_level(self):
        signals = [signal(POP_F1, 10, {(10, 20)})]
        out = classify_signals(signals, org_map(10, 20))
        assert out[0].signal_type is SignalType.LINK

    def test_common_as_is_as_level(self):
        links = {(10, 99), (20, 99), (30, 99), (40, 99)}
        signals = [signal(POP_F1, n, {(n, 99)}) for n, _ in links]
        out = classify_signals(signals, org_map(10, 20, 30, 40, 99))
        assert out[0].signal_type is SignalType.AS
        assert out[0].common_asn == 99

    def test_dominant_as_with_collateral_still_as_level(self):
        # 10 links, 9 share AS99: the dominance relaxation at 90 %.
        links = {(n, 99) for n in range(10, 19)} | {(50, 60)}
        signals = [signal(POP_F1, n, {(n, f)}) for n, f in links]
        as2org = org_map(*range(10, 19), 50, 60, 99)
        out = classify_signals(signals, as2org)
        assert out[0].signal_type is SignalType.AS

    def test_operator_level_for_siblings(self):
        # All links touch one of the siblings {97, 98, 99} of one org.
        links = {(10, 97), (20, 98), (30, 99), (40, 97)}
        as2org = org_map(10, 20, 30, 40)
        as2org.update({97: "megacorp", 98: "megacorp", 99: "megacorp"})
        signals = [signal(POP_F1, n, {(n, f)}) for n, f in links]
        out = classify_signals(signals, as2org)
        assert out[0].signal_type is SignalType.OPERATOR
        assert out[0].common_org == "megacorp"

    def test_pop_level_requires_disjoint_diversity(self):
        links = {(10, 40), (20, 50), (30, 60)}
        signals = [signal(POP_F1, n, {(n, f)}) for n, f in links]
        out = classify_signals(signals, org_map(10, 20, 30, 40, 50, 60))
        assert out[0].signal_type is SignalType.POP

    def test_sibling_near_ends_do_not_count_twice(self):
        # Three near-ends but two share an org: only 2 near orgs.
        links = {(10, 40), (11, 50), (30, 60)}
        as2org = {10: "a", 11: "a", 30: "b", 40: "x", 50: "y", 60: "z"}
        signals = [signal(POP_F1, n, {(n, f)}) for n, f in links]
        out = classify_signals(signals, as2org)
        assert out[0].signal_type is not SignalType.POP

    def test_signals_grouped_per_pop(self):
        signals = [
            signal(POP_F1, 10, {(10, 40)}),
            signal(POP_IX, 20, {(20, 50)}),
        ]
        out = classify_signals(signals, org_map(10, 20, 40, 50))
        assert {c.pop for c in out} == {POP_F1, POP_IX}


def make_colo() -> ColocationMap:
    """Two-building fabric (mf1, mf2) + one IXP; mf3 in another city.

    Tenants: mf1 = {10, 20, 30}, mf2 = {40, 50, 60}, mf3 = {70, 80, 90}.
    IXP members: everyone in mf1+mf2 plus remote AS99.
    """
    colo = ColocationMap()
    colo.facilities["mf1"] = MapFacility(
        map_id="mf1", city_name="London", country="GB",
        tenants={10, 20, 30, 25}, fac_id_hints={"f1"},
    )
    colo.facilities["mf2"] = MapFacility(
        map_id="mf2", city_name="London", country="GB",
        tenants={40, 50, 60}, fac_id_hints={"f2"},
    )
    colo.facilities["mf3"] = MapFacility(
        map_id="mf3", city_name="Amsterdam", country="NL",
        tenants={70, 80, 90}, fac_id_hints={"f3"},
    )
    colo.ixps["mix1"] = MapIXP(
        map_id="mix1", city_name="London", country="GB",
        members={10, 20, 30, 40, 50, 60, 99},
        facility_map_ids={"mf1", "mf2"}, ixp_id_hints={"ix1"},
    )
    colo.reindex()
    return colo


def classification(pop, links, stype=SignalType.POP):
    near = {n for n, _ in links}
    far = {f for _, f in links}
    return SignalClassification(
        pop=pop,
        signal_type=stype,
        bin_start=0.0,
        bin_end=60.0,
        near_ases=near,
        far_ases=far,
        links=set(links),
    )


class TestInvestigation:
    def test_near_end_facility_confirmed(self):
        colo = make_colo()
        inv = Investigator(colo)
        # Facility signal at mf1; all colocated far-ends affected.
        links = {(10, 20), (10, 30), (20, 30), (30, 10)}
        c = classification(POP_F1.__class__(PoPKind.FACILITY, "mf1"), links)
        result = inv.investigate(c, baseline_far_ases={10, 20, 30})
        assert result.converged
        assert result.located_pop.pop_id == "mf1"
        assert result.method == "near-end"

    def test_far_end_facility_identified(self):
        colo = make_colo()
        inv = Investigator(colo)
        # Signal at mf1 but only far-ends colocated in mf2 affected:
        # classic Figure 2(c) cross-building situation.
        links = {(10, 40), (20, 50), (30, 60)}
        c = classification(PoP(PoPKind.FACILITY, "mf1"), links)
        baseline_far = {20, 30, 40, 50, 60}  # includes unaffected locals
        result = inv.investigate(c, baseline_far)
        assert result.converged
        assert result.located_pop == PoP(PoPKind.FACILITY, "mf2")
        assert result.method == "far-end"

    def test_ixp_escalation_when_no_facility_converges(self):
        colo = make_colo()
        inv = Investigator(colo)
        # Affected far-ends span both buildings evenly; the PNI partner
        # AS25 at mf1 stays up so the near-end test fails, and neither
        # building wins the far-end arbitration — the common IXP does.
        links = {(10, 20), (10, 30), (10, 40), (10, 50)}
        c = classification(PoP(PoPKind.FACILITY, "mf1"), links)
        baseline_far = {20, 30, 40, 50, 25}
        result = inv.investigate(c, baseline_far)
        assert result.converged
        assert result.located_pop == PoP(PoPKind.IXP, "mix1")
        assert result.method == "ixp-escalation"

    def test_ixp_signal_refined_to_building(self):
        colo = make_colo()
        inv = Investigator(colo)
        # Only links touching mf1 members died; links among mf2 members
        # stayed up: Figure 2(b), outage at the building not the IXP.
        affected = {(10, 40), (20, 50), (30, 60), (10, 20)}
        baseline = affected | {(40, 50), (50, 60), (40, 60)}
        c = classification(POP_IX, affected)
        result = inv.investigate(c, {f for _, f in baseline}, baseline)
        assert result.converged
        assert result.located_pop == PoP(PoPKind.FACILITY, "mf1")
        assert result.method == "fabric-refinement"

    def test_ixp_wide_when_both_buildings_hit(self):
        colo = make_colo()
        inv = Investigator(colo)
        affected = {(10, 40), (20, 50), (30, 60), (40, 50), (50, 60), (10, 20)}
        c = classification(POP_IX, affected)
        result = inv.investigate(c, {f for _, f in affected}, set(affected))
        assert result.converged
        assert result.located_pop == POP_IX
        assert result.method == "ixp-wide"

    def test_city_signal_resolved_to_facility(self):
        colo = make_colo()
        inv = Investigator(colo)
        links = {(10, 20), (20, 30), (30, 10)}
        c = classification(POP_CITY, links)
        result = inv.investigate(c, baseline_far_ases={10, 20, 30, 40, 50})
        assert result.converged
        assert result.located_pop == PoP(PoPKind.FACILITY, "mf1")

    def test_unexplainable_city_signal_needs_dataplane(self):
        colo = make_colo()
        inv = Investigator(colo)
        # Affected set scattered over unrelated ASes.
        links = {(10, 70), (40, 80), (99, 90)}
        c = classification(POP_CITY, links)
        result = inv.investigate(c, baseline_far_ases={70, 80, 90})
        assert not result.converged
        assert result.needs_dataplane

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            Investigator(make_colo(), margin=0.0)

    def test_remote_member_links_do_not_block_refinement(self):
        colo = make_colo()
        inv = Investigator(colo)
        # AS99 is a remote member (no tenancy): its dead link must not
        # stop the building attribution.
        affected = {(10, 40), (20, 50), (30, 60), (10, 20), (99, 10)}
        baseline = affected | {(40, 50), (50, 60)}
        c = classification(POP_IX, affected)
        result = inv.investigate(c, {f for _, f in baseline}, baseline)
        assert result.converged
        assert result.located_pop == PoP(PoPKind.FACILITY, "mf1")
