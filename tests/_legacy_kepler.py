"""Frozen pre-refactor Kepler orchestrator (equivalence reference).

Verbatim copy of the monolithic detector as it stood before the staged
pipeline refactor, kept ONLY for the equivalence test: seed scenarios
must produce identical records through this class and through the
pipeline-backed facade.  Do not extend it.

Original module docstring:

Wires the input module, the stable-path monitor, signal classification,
investigation/disambiguation and data-plane validation into a streaming
detector:

    BGP stream -> tagged paths -> 60 s bins -> per-AS signals
      -> classify (link / AS / operator / PoP)
      -> localise PoP-level signals over the colocation map
      -> (optionally) confirm via traceroute
      -> open outage record; track return-to-baseline; close at >50 %
      -> merge oscillating outages separated by < 12 h
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.bgp.messages import BGPStateMessage, BGPUpdate, StreamElement
from repro.core.colocation import ColocationMap
from repro.core.dataplane import (
    DataPlaneValidator,
    MERGE_GAP_S,
    NullValidator,
    RESTORE_FRACTION,
    ValidationOutcome,
)
from repro.core.events import OutageRecord, SignalType
from repro.core.input import InputModule
from repro.core.investigation import COLOCATION_MARGIN, Investigator
from repro.core.monitor import MonitorParams, OutageMonitor
from repro.core.signals import (
    MIN_POP_LEVEL_ASES,
    SignalClassification,
    classify_signals,
)
from repro.docmine.dictionary import CommunityDictionary, PoP, PoPKind


@dataclass
class KeplerParams:
    """All tunables of the pipeline with the paper's defaults."""

    monitor: MonitorParams = field(default_factory=MonitorParams)
    min_pop_ases: int = MIN_POP_LEVEL_ASES
    colocation_margin: float = COLOCATION_MARGIN
    restore_fraction: float = RESTORE_FRACTION
    merge_gap_s: float = MERGE_GAP_S
    #: Drop outages the data plane rejects (Section 4.4).  With the
    #: NullValidator every outcome is INCONCLUSIVE and nothing is
    #: dropped, i.e. pure control-plane operation.
    drop_rejected: bool = True
    #: Disable localisation (ablation): record the raw signal PoP.
    enable_investigation: bool = True
    #: Signals are correlated over this sliding window before the
    #: PoP-level rule is applied ("considers all outages signaled within
    #: a time interval", Section 4.3): BGP propagation jitter spreads
    #: one incident's updates over adjacent bins.
    correlation_window_s: float = 180.0


class LegacyKepler:
    """Pre-refactor monolithic detector (reference only)."""

    def __init__(
        self,
        dictionary: CommunityDictionary,
        colo: ColocationMap,
        as2org: dict[int, str],
        params: KeplerParams | None = None,
        validator: DataPlaneValidator | None = None,
    ) -> None:
        self.params = params or KeplerParams()
        self.dictionary = dictionary
        self.colo = colo
        self.as2org = dict(as2org)
        self.input = InputModule(dictionary, colo)
        self.monitor = OutageMonitor(self.params.monitor)
        self.investigator = Investigator(colo, margin=self.params.colocation_margin)
        self.validator: DataPlaneValidator = validator or NullValidator()

        #: finalized (closed or merged) outage records.
        self.records: list[OutageRecord] = []
        #: open outages keyed by located PoP.
        self.open: dict[PoP, OutageRecord] = {}
        #: signal PoPs tracked for each open record.
        self._tracked: dict[PoP, set[PoP]] = {}
        #: recently closed records still watched for oscillation
        #: relapses (Section 4.4): located pop -> (record, signal pops,
        #: close time).
        self._watch: dict[PoP, tuple[OutageRecord, set[PoP], float]] = {}
        #: every classification ever made, for sensitivity analysis.
        self.signal_log: list[SignalClassification] = []
        #: signals rejected by the data plane (false-positive pruning).
        self.rejected: list[SignalClassification] = []
        #: sliding correlation window of raw signals.
        self._window: list = []

    # ------------------------------------------------------------------
    @classmethod
    def from_world(cls, world: "object", **kwargs: object) -> "LegacyKepler":
        """Convenience constructor from a :class:`repro.scenarios.World`."""
        return cls(
            dictionary=world.dictionary,  # type: ignore[attr-defined]
            colo=world.colo,  # type: ignore[attr-defined]
            as2org=world.as2org,  # type: ignore[attr-defined]
            **kwargs,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    def prime(self, updates: Iterable[BGPUpdate]) -> int:
        """Install a RIB snapshot as the stable baseline (assumed aged)."""
        count = 0
        for update in updates:
            tagged = self.input.process(update)
            if tagged is None or not tagged.tags:
                continue
            self.monitor.prime(tagged)
            count += 1
        return count

    def process(self, elements: Iterable[StreamElement]) -> None:
        """Consume a time-sorted element stream."""
        for element in elements:
            if isinstance(element, BGPStateMessage):
                self.monitor.observe_state(element)
                continue
            tagged = self.input.process(element)
            if tagged is None:
                continue
            prev_bin = self.monitor.current_bin_start
            signals = self.monitor.observe(tagged)
            if signals:
                self._handle_signals(signals)
            new_bin = self.monitor.current_bin_start
            if prev_bin is not None and new_bin != prev_bin:
                self._evaluate_open(new_bin if new_bin is not None else element.sort_key()[0])

    def finalize(self, end_time: float | None = None) -> list[OutageRecord]:
        """Flush bins, close tracking, merge oscillations; return records."""
        signals = self.monitor.close_bin()
        if signals:
            self._handle_signals(signals)
        if end_time is not None:
            self._evaluate_open(end_time)
        # Ongoing outages stay open (duration unknown).
        for record in self.open.values():
            self.records.append(record)
        self.open.clear()
        self.records = _merge_oscillations(self.records, self.params.merge_gap_s)
        self.records.sort(key=lambda r: (r.start, str(r.located_pop)))
        return self.records

    # ------------------------------------------------------------------
    def _handle_signals(self, signals: list) -> None:
        # Per-bin classification feeds the sensitivity log (Figure 7a).
        per_bin = classify_signals(
            signals, self.as2org, min_pop_ases=self.params.min_pop_ases
        )
        self.signal_log.extend(per_bin)
        # Detection runs on the correlation window: one physical event's
        # updates land in adjacent bins.
        now_bin = max(s.bin_start for s in signals)
        self._window.extend(signals)
        self._window = [
            s
            for s in self._window
            if now_bin - s.bin_start <= self.params.correlation_window_s
        ]
        classifications = classify_signals(
            self._window, self.as2org, min_pop_ases=self.params.min_pop_ases
        )
        pop_level = [
            c for c in classifications if c.signal_type is SignalType.POP
        ]
        if not pop_level:
            return
        concurrent = {c.pop for c in pop_level}
        located_results: list[tuple[SignalClassification, PoP, str]] = []
        for c in pop_level:
            if not self.params.enable_investigation:
                located_results.append((c, c.pop, "signal-pop"))
                continue
            baseline_far = self.monitor.baseline_far_ases(c.pop) | {
                f for _, f in c.links if f is not None
            }
            baseline_links = self.monitor.baseline_links(c.pop) | set(c.links)
            result = self.investigator.investigate(
                c, baseline_far, baseline_links, concurrent
            )
            if result.converged:
                assert result.located_pop is not None
                located_results.append((c, result.located_pop, result.method))
                continue
            # Unresolved by the map: targeted traceroutes decide.
            outcome = self.validator.validate(c.pop, c.bin_end)
            if outcome is ValidationOutcome.CONFIRMED:
                located_results.append((c, c.pop, "dataplane"))
            else:
                self.rejected.append(c)

        # City abstraction: multiple epicenters in one city in one bin.
        city_scope = _common_city(located_results, self.colo)
        for c, located, method in located_results:
            outcome = self.validator.validate(located, c.bin_end)
            if outcome is ValidationOutcome.REJECTED and self.params.drop_rejected:
                self.rejected.append(c)
                continue
            self._open_or_extend(c, located, method, outcome, city_scope)

    def _open_or_extend(
        self,
        c: SignalClassification,
        located: PoP,
        method: str,
        outcome: ValidationOutcome,
        city_scope: str | None,
    ) -> None:
        if located in self._watch:
            # A fresh signal while watching for relapses: new incident.
            _, pops, _ = self._watch.pop(located)
            for pop in pops:
                self.monitor.stop_tracking(pop)
        record = self.open.get(located)
        if record is None:
            record = OutageRecord(
                signal_pop=c.pop,
                located_pop=located,
                start=c.bin_start,
                method=method,
                city_scope=city_scope,
            )
            self.open[located] = record
            self._tracked[located] = set()
        record.affected_ases.update(c.affected_ases)
        record.affected_links.update(c.links)
        if outcome is ValidationOutcome.CONFIRMED:
            record.confirmed_by_dataplane = True
        elif outcome is ValidationOutcome.REJECTED:
            record.confirmed_by_dataplane = False
        # Track returns on the signal PoP (where communities are visible).
        diverted = getattr(self.monitor, "last_diverted", {}).get(c.pop, set())
        if diverted:
            self.monitor.start_tracking(c.pop, set(diverted))
            self._tracked[located].add(c.pop)

    def _restored_fraction(self, located: PoP, pops: set[PoP], now: float) -> float | None:
        # Prefer the data plane when available, BGP otherwise (§4.4).
        fraction = self.validator.restored_fraction(located, now)
        if fraction is not None:
            return fraction
        fractions = [
            f
            for pop in pops
            if (f := self.monitor.returned_fraction(pop)) is not None
        ]
        return min(fractions) if fractions else None

    def _evaluate_open(self, now: float) -> None:
        for located in sorted(self.open, key=str):
            record = self.open[located]
            pops = self._tracked.get(located, set())
            fraction = self._restored_fraction(located, pops, now)
            if fraction is None:
                continue
            if fraction > self.params.restore_fraction:
                record.end = now
                self.records.append(record)
                del self.open[located]
                # Keep watching the signal PoPs: oscillating outages
                # relapse within the merge window (Section 4.4).
                self._watch[located] = (record, self._tracked.pop(located), now)
        for located in sorted(self._watch, key=str):
            record, pops, closed_at = self._watch[located]
            if now - closed_at > self.params.merge_gap_s:
                for pop in pops:
                    self.monitor.stop_tracking(pop)
                del self._watch[located]
                continue
            fraction = self._restored_fraction(located, pops, now)
            if fraction is not None and fraction <= self.params.restore_fraction:
                relapse = OutageRecord(
                    signal_pop=record.signal_pop,
                    located_pop=located,
                    start=now,
                    method=record.method,
                    city_scope=record.city_scope,
                )
                relapse.affected_ases.update(record.affected_ases)
                relapse.affected_links.update(record.affected_links)
                self.open[located] = relapse
                self._tracked[located] = pops
                del self._watch[located]

    # ------------------------------------------------------------------
    def signal_counts(self) -> dict[SignalType, int]:
        counts = {t: 0 for t in SignalType}
        for c in self.signal_log:
            counts[c.signal_type] += 1
        return counts


def _common_city(
    located_results: list[tuple[SignalClassification, PoP, str]],
    colo: ColocationMap,
) -> str | None:
    """City shared by all located epicenters of one bin (>=2 of them)."""
    if len(located_results) < 2:
        return None
    cities: set[str] = set()
    for _, located, _ in located_results:
        if located.kind is PoPKind.FACILITY:
            fac = colo.facilities.get(located.pop_id)
            cities.add(fac.city_name if fac else "?")
        elif located.kind is PoPKind.IXP:
            ixp = colo.ixps.get(located.pop_id)
            cities.add(ixp.city_name if ixp else "?")
        else:
            cities.add(located.pop_id)
    if len(cities) == 1 and "?" not in cities:
        return next(iter(cities))
    return None


def _merge_oscillations(
    records: list[OutageRecord], gap_s: float
) -> list[OutageRecord]:
    """Merge consecutive outages of one PoP separated by < ``gap_s``.

    The merged incident's downtime is the *sum* of the member outage
    durations (Section 4.4), recorded by keeping start of the first and
    accumulating durations into ``end`` via an adjusted offset.
    """
    by_pop: dict[PoP, list[OutageRecord]] = {}
    for record in records:
        by_pop.setdefault(record.located_pop, []).append(record)
    merged: list[OutageRecord] = []
    for pop in sorted(by_pop, key=str):
        group = sorted(by_pop[pop], key=lambda r: r.start)
        current: OutageRecord | None = None
        downtime = 0.0
        for record in group:
            if current is None:
                current = record
                downtime = record.duration_s or 0.0
                continue
            current_end = current.end if current.end is not None else current.start
            if record.start - current_end < gap_s:
                downtime += record.duration_s or 0.0
                current.merged_incidents += 1
                current.affected_ases.update(record.affected_ases)
                current.affected_links.update(record.affected_links)
                current.end = current.start + downtime
                if record.confirmed_by_dataplane:
                    current.confirmed_by_dataplane = True
            else:
                merged.append(current)
                current = record
                downtime = record.duration_s or 0.0
        if current is not None:
            merged.append(current)
    return merged
