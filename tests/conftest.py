"""Shared fixtures.

``world`` is session-scoped and must be treated as **read-only** (no
engine events) — use ``fresh_world`` for tests that mutate routing
state.  ``small_topo`` is a hand-built six-AS topology with known
ground truth, used by the unit tests of the Kepler core.
"""

from __future__ import annotations

import pytest

from repro.geo.cities import city_by_name
from repro.scenarios import World, build_world
from repro.topology.builder import WorldParams
from repro.topology.communities import (
    CommunityScheme,
    CommunityTag,
    RouteServerScheme,
    TagKind,
)
from repro.topology.entities import (
    Address,
    ASTier,
    AutonomousSystem,
    Facility,
    IXP,
    IXPPort,
    Organization,
    Topology,
)

#: Smaller world for speedier construction in tests that need fresh state.
SMALL_WORLD = WorldParams(
    seed=7,
    n_tier1=5,
    n_tier2=20,
    n_access=60,
    n_content=18,
    n_facilities=50,
    n_ixps=12,
)


@pytest.fixture(scope="session")
def world() -> World:
    """The default world; read-only in tests."""
    return build_world(seed=1)


@pytest.fixture()
def fresh_world() -> World:
    """A smaller world rebuilt per test; safe to mutate."""
    return build_world(seed=7, world_params=SMALL_WORLD)


def _facility(fac_id: str, name: str, city_name: str, postcode: str) -> Facility:
    city = city_by_name(city_name)
    assert city is not None
    return Facility(
        fac_id=fac_id,
        name=name,
        operator=name.split()[0],
        city=city,
        address=Address(
            street="1 Test St",
            postcode=postcode,
            city_name=city.name,
            country=city.country,
        ),
        lat=city.lat,
        lon=city.lon,
    )


def build_small_topology() -> Topology:
    """Six ASes, three facilities in two cities, one IXP.

    Layout (all in London except F3 in Amsterdam):

    * F1 hosts AS10, AS20, AS30 and the IXP fabric (segment 1)
    * F2 hosts AS40, AS50 and the IXP fabric (segment 2)
    * F3 (Amsterdam) hosts AS60
    * AS10 is a transit provider for AS30, AS50, AS60 (PNIs)
    * AS20-AS40 peer over the IXP; AS30-AS50 peer over the IXP
    * every AS originates one IPv4 prefix; AS10/AS20 tag facilities,
      AS30/AS40 tag cities, AS50 tags the IXP, AS60 has no communities
    """
    topo = Topology()
    for fac in (
        _facility("f1", "Test DC One", "London", "E14 1AA"),
        _facility("f2", "Test DC Two", "London", "E14 2BB"),
        _facility("f3", "Test DC Three", "Amsterdam", "1098 XG"),
    ):
        topo.facilities[fac.fac_id] = fac
        topo.facility_tenants[fac.fac_id] = set()

    london = city_by_name("London")
    amsterdam = city_by_name("Amsterdam")
    assert london is not None and amsterdam is not None
    homes = {10: london, 20: london, 30: london, 40: london, 50: london, 60: amsterdam}
    tiers = {
        10: ASTier.TIER1,
        20: ASTier.TIER2,
        30: ASTier.ACCESS,
        40: ASTier.CONTENT,
        50: ASTier.ACCESS,
        60: ASTier.ACCESS,
    }
    for asn in (10, 20, 30, 40, 50, 60):
        org_id = f"org{asn}"
        topo.orgs[org_id] = Organization(org_id, f"Org {asn}", homes[asn].country)
        topo.ases[asn] = AutonomousSystem(
            asn=asn,
            name=f"AS{asn}",
            org_id=org_id,
            tier=tiers[asn],
            home_city=homes[asn],
            prefixes_v4=(f"10.{asn}.0.0/24",),
        )
        topo.as_facilities[asn] = set()
        topo.providers[asn] = set()

    def place(asn: int, fac_id: str) -> None:
        topo.as_facilities[asn].add(fac_id)
        topo.facility_tenants[fac_id].add(asn)

    for asn in (10, 20, 30):
        place(asn, "f1")
    for asn in (40, 50):
        place(asn, "f2")
    place(60, "f3")
    place(10, "f2")  # the transit provider is present in both buildings
    place(10, "f3")

    topo.ixps["ix1"] = IXP(
        ixp_id="ix1",
        name="TEST-IX",
        rs_asn=59900,
        city=london,
        website="https://www.test-ix.net",
        facility_ids=("f1", "f2"),
    )
    topo.ixp_members["ix1"] = {20, 30, 40, 50}
    for asn, port_fac in ((20, "f1"), (30, "f1"), (40, "f2"), (50, "f2")):
        topo.ixp_ports[("ix1", asn)] = IXPPort(
            ixp_id="ix1", asn=asn, facility_id=port_fac
        )
    topo.rs_schemes["ix1"] = RouteServerScheme(ixp_id="ix1", rs_asn=59900)

    # Relationships: AS10 provides transit to everyone else.
    for customer in (20, 30, 40, 50, 60):
        topo.providers[customer].add(10)
    topo.peers.add(frozenset((20, 40)))
    topo.peers.add(frozenset((30, 50)))

    # PNIs for transit links.
    topo.pnis[frozenset((10, 20))] = {"f1"}
    topo.pnis[frozenset((10, 30))] = {"f1"}
    topo.pnis[frozenset((10, 40))] = {"f2"}
    topo.pnis[frozenset((10, 50))] = {"f2"}
    topo.pnis[frozenset((10, 60))] = {"f3"}

    # Community schemes.
    topo.ases[10].uses_communities = True
    topo.ases[10].scheme = CommunityScheme(
        asn=10,
        ingress={
            101: CommunityTag(TagKind.FACILITY, "f1"),
            102: CommunityTag(TagKind.FACILITY, "f2"),
            103: CommunityTag(TagKind.FACILITY, "f3"),
        },
        outbound={900: "announce"},
    )
    topo.ases[20].uses_communities = True
    topo.ases[20].scheme = CommunityScheme(
        asn=20,
        ingress={
            201: CommunityTag(TagKind.FACILITY, "f1"),
            210: CommunityTag(TagKind.IXP, "ix1"),
        },
    )
    topo.ases[30].uses_communities = True
    topo.ases[30].scheme = CommunityScheme(
        asn=30, ingress={301: CommunityTag(TagKind.CITY, "London")}
    )
    topo.ases[40].uses_communities = True
    topo.ases[40].scheme = CommunityScheme(
        asn=40, ingress={401: CommunityTag(TagKind.CITY, "London")}
    )
    topo.ases[50].uses_communities = True
    topo.ases[50].scheme = CommunityScheme(
        asn=50, ingress={501: CommunityTag(TagKind.IXP, "ix1")}
    )
    topo.validate()
    return topo


@pytest.fixture()
def small_topo() -> Topology:
    return build_small_topology()
